// Package metrics implements the paper's evaluation measures (§V-A): RMSE,
// normalized RMSE (divided by the runtime range), relative error, per-bin
// and per-group error aggregation, and the correlation used in the
// predicted-vs-actual comparison (Figure 9).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root mean squared error between pred and actual.
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("metrics: RMSE length mismatch %d vs %d", len(pred), len(actual)))
	}
	if len(pred) == 0 {
		return 0
	}
	var acc float64
	for i := range pred {
		d := pred[i] - actual[i]
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(pred)))
}

// Range returns max(actual) - min(actual), or 0 for empty input.
func Range(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// NormRMSE returns RMSE divided by the actual-value range (§V-A:
// "Normalized RMSE is calculated by dividing the RMSE by the distance
// between the minimum and maximum runtime"). Zero range returns 0.
func NormRMSE(pred, actual []float64) float64 {
	r := Range(actual)
	if r == 0 {
		return 0
	}
	return RMSE(pred, actual) / r
}

// RelErrors returns per-point |error| / range(actual) — the paper's relative
// error. Zero range yields all zeros.
func RelErrors(pred, actual []float64) []float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("metrics: RelErrors length mismatch %d vs %d", len(pred), len(actual)))
	}
	out := make([]float64, len(pred))
	r := Range(actual)
	if r == 0 {
		return out
	}
	for i := range pred {
		out[i] = math.Abs(pred[i]-actual[i]) / r
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc float64
	for _, v := range xs {
		acc += v
	}
	return acc / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var acc float64
	for _, v := range xs {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between two series
// (0 when either is constant).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("metrics: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks assigns 1-based ranks to xs, averaging ranks across ties (the
// "fractional ranking" used by Spearman's rho).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// positions i..j-1 are tied; average rank = mean of (i+1)..j
		avg := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// Spearman returns Spearman's rank correlation coefficient between two
// series: Pearson correlation over fractional (tie-averaged) ranks. It is
// the serving tier's online quality measure — an advisor only needs to
// *order* variants correctly, so rank correlation of predicted vs. measured
// runtimes is the right score. Returns NaN for n < 3 or when either series
// is constant (no ranking information).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("metrics: Spearman length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 3 {
		return math.NaN()
	}
	rx, ry := ranks(xs), ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var sxy, sxx, syy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Bin is one error bucket of Figure 4 (relative error per 10-second range).
type Bin struct {
	Label   string  // e.g. "0-10", "100 <"
	Lo, Hi  float64 // bounds in the actual-value unit; Hi = +Inf for the last
	Count   int
	MeanErr float64 // mean relative error of points in the bin
}

// BinnedRelError groups points by actual value into numBins buckets of
// binWidth (same unit as actual), with a final open-ended bucket, and
// averages the relative error within each — Figure 4's layout with
// binWidth=10s and numBins=10 gives bins 0-10 … 90-100, "100 <".
func BinnedRelError(pred, actual []float64, binWidth float64, numBins int) []Bin {
	if binWidth <= 0 || numBins < 1 {
		panic("metrics: BinnedRelError needs positive binWidth and numBins")
	}
	rel := RelErrors(pred, actual)
	bins := make([]Bin, numBins+1)
	sums := make([]float64, numBins+1)
	for i := range bins {
		lo := float64(i) * binWidth
		if i < numBins {
			bins[i] = Bin{Label: fmt.Sprintf("%g-%g", lo, lo+binWidth), Lo: lo, Hi: lo + binWidth}
		} else {
			bins[i] = Bin{Label: fmt.Sprintf("%g <", lo), Lo: lo, Hi: math.Inf(1)}
		}
	}
	for i, a := range actual {
		idx := int(a / binWidth)
		if idx < 0 {
			idx = 0
		}
		if idx > numBins {
			idx = numBins
		}
		bins[idx].Count++
		sums[idx] += rel[i]
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanErr = sums[i] / float64(bins[i].Count)
		}
	}
	return bins
}

// GroupErr is a per-group error row (Figure 6's per-application error rate).
type GroupErr struct {
	Group   string
	Count   int
	MeanErr float64
}

// GroupedRelError averages relative error per group label, sorted by group
// name.
func GroupedRelError(pred, actual []float64, groups []string) []GroupErr {
	if len(groups) != len(pred) {
		panic(fmt.Sprintf("metrics: GroupedRelError length mismatch %d vs %d", len(groups), len(pred)))
	}
	rel := RelErrors(pred, actual)
	type agg struct {
		n   int
		sum float64
	}
	m := map[string]*agg{}
	for i, g := range groups {
		a, ok := m[g]
		if !ok {
			a = &agg{}
			m[g] = a
		}
		a.n++
		a.sum += rel[i]
	}
	var out []GroupErr
	for g, a := range m {
		out = append(out, GroupErr{Group: g, Count: a.n, MeanErr: a.sum / float64(a.n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}
