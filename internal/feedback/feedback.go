// Package feedback accumulates measured runtimes reported by clients into an
// append-only, crash-safe, per-platform log. It is the durable half of the
// serving tier's feedback→retrain→rollout loop: `POST /v1/feedback` appends
// here, and `train -from-feedback` (or the serve background retrainer) reads
// the log back into an incremental training set.
//
// Records are newline-delimited JSON, one object per line, written with a
// single O_APPEND write under a mutex so concurrent appends never interleave.
// Reads tolerate a torn final line (a crash mid-write) by discarding any
// trailing bytes that do not decode; everything before the tear is preserved.
// The package depends only on the standard library.
package feedback

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FormatVersion is stamped into every record so future readers can migrate.
const FormatVersion = 1

// Record is one measured observation: "the request identified by Key, served
// with this model on this platform, predicted PredictedUS but actually ran in
// MeasuredUS". Source carries the exact generated variant source so a retrain
// can rebuild the ParaGraph sample without access to the serving process.
type Record struct {
	V           int                `json:"v"`
	Key         string             `json:"key"`      // content-addressed request hash
	Platform    string             `json:"platform"` // hw machine name
	Model       string             `json:"model"`    // model version that served the prediction
	Kernel      string             `json:"kernel"`
	Variant     string             `json:"variant"`
	Teams       int                `json:"teams,omitempty"`
	Threads     int                `json:"threads"`
	Bindings    map[string]float64 `json:"bindings,omitempty"`
	Source      string             `json:"source"`
	PredictedUS float64            `json:"predicted_us"`
	MeasuredUS  float64            `json:"measured_us"`
	UnixNano    int64              `json:"unix_nano"`
}

// Validate reports whether the record is complete enough to train from.
func (r Record) Validate() error {
	switch {
	case r.Key == "":
		return fmt.Errorf("feedback: record missing key")
	case r.Platform == "":
		return fmt.Errorf("feedback: record missing platform")
	case r.Source == "":
		return fmt.Errorf("feedback: record missing source")
	case r.Threads <= 0:
		return fmt.Errorf("feedback: record needs positive threads, got %d", r.Threads)
	case !(r.MeasuredUS > 0) || math.IsInf(r.MeasuredUS, 0):
		return fmt.Errorf("feedback: measured_us must be finite and positive, got %v", r.MeasuredUS)
	}
	return nil
}

// Slug converts a platform name into the filename-safe form used for log
// files, e.g. "NVIDIA V100 (GPU)" -> "nvidia-v100-gpu". It matches the
// registry's checkpoint directory naming (the registry cannot be imported
// here without a cycle).
func Slug(platform string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(platform) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Log is a directory of per-platform JSONL files.
type Log struct {
	dir string
	mu  sync.Mutex
}

// Open creates dir if needed and returns a log rooted there.
func Open(dir string) (*Log, error) {
	if dir == "" {
		return nil, fmt.Errorf("feedback: empty log directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: create log dir: %w", err)
	}
	return &Log{dir: dir}, nil
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) path(platform string) string {
	return filepath.Join(l.dir, Slug(platform)+".jsonl")
}

// Append validates rec, stamps the format version, and appends it to the
// platform's log file as one JSON line. The write is a single O_APPEND
// syscall so concurrent appenders (or multiple processes) never interleave
// partial lines; a crash can only tear the final line, which Read discards.
func (l *Log) Append(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	rec.V = FormatVersion
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("feedback: encode record: %w", err)
	}
	line = append(line, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.OpenFile(l.path(rec.Platform), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: open log: %w", err)
	}
	defer f.Close()
	// Heal a torn tail from a previous crash: if the file does not end in a
	// newline, terminate that line first so the new record gets its own line
	// instead of gluing onto (and being lost with) the torn one.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			line = append([]byte{'\n'}, line...)
		}
	}
	if _, err := f.Write(line); err != nil {
		return fmt.Errorf("feedback: append record: %w", err)
	}
	return f.Close()
}

// Read returns all decodable records for platform in append order, plus the
// number of lines skipped because they were torn or malformed. A missing
// file is an empty log, not an error.
func (l *Log) Read(platform string) (recs []Record, skipped int, err error) {
	f, err := os.Open(l.path(platform))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("feedback: open log: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Validate() != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, skipped, fmt.Errorf("feedback: scan log: %w", err)
	}
	return recs, skipped, nil
}

// Count returns the number of valid records currently logged for platform.
func (l *Log) Count(platform string) (int, error) {
	recs, _, err := l.Read(platform)
	return len(recs), err
}

// Platforms lists the platform slugs that have log files, sorted by name.
func (l *Log) Platforms() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: list log dir: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		out = append(out, strings.TrimSuffix(e.Name(), ".jsonl"))
	}
	return out, nil
}
