package feedback

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testRecord(i int) Record {
	return Record{
		Key:         fmt.Sprintf("%064x", i),
		Platform:    "NVIDIA V100 (GPU)",
		Model:       "default",
		Kernel:      "matmul",
		Variant:     "gpu",
		Teams:       64,
		Threads:     128,
		Bindings:    map[string]float64{"n": float64(i)},
		Source:      "#pragma omp target teams distribute parallel for\nfor(...){}",
		PredictedUS: float64(100 + i),
		MeasuredUS:  float64(110 + i),
		UnixNano:    int64(i),
	}
}

func TestAppendRead(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, skipped, err := l.Read("NVIDIA V100 (GPU)")
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != n {
		t.Fatalf("Read = %d recs, %d skipped; want %d, 0", len(recs), skipped, n)
	}
	for i, r := range recs {
		if r.V != FormatVersion {
			t.Fatalf("record %d missing format version: %+v", i, r)
		}
		if r.Key != testRecord(i).Key || r.MeasuredUS != testRecord(i).MeasuredUS {
			t.Fatalf("record %d out of order or corrupted: %+v", i, r)
		}
	}
	if c, err := l.Count("NVIDIA V100 (GPU)"); err != nil || c != n {
		t.Fatalf("Count = %d, %v; want %d", c, err, n)
	}
	// Other platforms see an empty log, and a missing file is not an error.
	if recs, _, err := l.Read("IBM POWER9 (CPU)"); err != nil || len(recs) != 0 {
		t.Fatalf("missing platform Read = %d recs, %v", len(recs), err)
	}
}

func TestValidate(t *testing.T) {
	good := testRecord(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []func(*Record){
		func(r *Record) { r.Key = "" },
		func(r *Record) { r.Platform = "" },
		func(r *Record) { r.Source = "" },
		func(r *Record) { r.Threads = 0 },
		func(r *Record) { r.MeasuredUS = 0 },
		func(r *Record) { r.MeasuredUS = -5 },
	}
	for i, mut := range bad {
		r := testRecord(1)
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(1)
	r.MeasuredUS = -1
	if err := l.Append(r); err == nil {
		t.Error("Append accepted invalid record")
	}
}

// TestTornTail simulates a crash mid-append: a truncated final line must be
// skipped on read, and subsequent appends must keep working.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, Slug("NVIDIA V100 (GPU)")+".jsonl")
	// Tear the last line: drop its trailing half (including the newline).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := l.Read("NVIDIA V100 (GPU)")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Fatalf("after tear: %d recs, %d skipped; want 2, 1", len(recs), skipped)
	}
	// The log heals: Append terminates the torn line so the new record gets
	// its own line. Only the torn record itself stays lost.
	if err := l.Append(testRecord(99)); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err = l.Read("NVIDIA V100 (GPU)")
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(recs) != 3 || recs[2].Key != testRecord(99).Key {
		t.Fatalf("after heal-append: %d recs, %d skipped, last %q", len(recs), skipped, recs[len(recs)-1].Key)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(testRecord(w*per + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs, skipped, err := l.Read("NVIDIA V100 (GPU)")
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != workers*per {
		t.Fatalf("concurrent appends: %d recs, %d skipped; want %d, 0", len(recs), skipped, workers*per)
	}
}

func TestSlugAndPlatforms(t *testing.T) {
	cases := map[string]string{
		"NVIDIA V100 (GPU)": "nvidia-v100-gpu",
		"IBM POWER9 (CPU)":  "ibm-power9-cpu",
		"already-slugged":   "already-slugged",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
		if got := Slug(want); got != want {
			t.Errorf("Slug not idempotent on %q: %q", want, got)
		}
	}
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	r := testRecord(1)
	r.Platform = "IBM POWER9 (CPU)"
	if err := l.Append(r); err != nil {
		t.Fatal(err)
	}
	plats, err := l.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(plats) != 2 || plats[0] != "ibm-power9-cpu" || plats[1] != "nvidia-v100-gpu" {
		t.Fatalf("Platforms = %v", plats)
	}
	// Reading by slug or by full name hits the same file.
	if recs, _, err := l.Read("ibm-power9-cpu"); err != nil || len(recs) != 1 {
		t.Fatalf("Read by slug = %d recs, %v", len(recs), err)
	}
}
