package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"paragraph/internal/nn"
	"paragraph/internal/tensor"
)

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs    int     // default 40
	BatchSize int     // default 32
	LR        float64 // default 3e-3
	ClipNorm  float64 // gradient clipping; default 5
	Workers   int     // parallel gradient workers; default GOMAXPROCS
	Seed      int64
	// Progress, when non-nil, receives (epoch, trainLoss, valRMSE-scaled)
	// after each epoch.
	Progress func(epoch int, trainLoss, valRMSE float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm <= 0 {
		c.ClipNorm = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// History records per-epoch training diagnostics; ValRMSE is in the scaled
// target space (the unit of the paper's Figures 5 and 7 after
// normalization).
type History struct {
	TrainLoss []float64
	ValRMSE   []float64
}

// FinalValRMSE returns the last validation RMSE, or +Inf when absent.
func (h History) FinalValRMSE() float64 {
	if len(h.ValRMSE) == 0 {
		return math.Inf(1)
	}
	return h.ValRMSE[len(h.ValRMSE)-1]
}

// Train optimizes the model on train, evaluating on val each epoch.
// Gradients are computed data-parallel across cfg.Workers goroutines, each
// with its own tape; parameter updates use Adam on the merged gradients.
func (m *Model) Train(train, val []*Sample, cfg TrainConfig) (History, error) {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		return History{}, fmt.Errorf("gnn: empty training set")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	var hist History

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			loss := m.trainBatch(batch, train, cfg)
			nn.ClipGradNorm(m.params, cfg.ClipNorm)
			opt.Step(m.params)
			// The optimizer mutates parameter values in place; the engine's
			// precomputed projections (inferparams.go) are now stale.
			m.InvalidateInference()
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		valRMSE := m.EvalRMSE(val, cfg.Workers)
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)
		hist.ValRMSE = append(hist.ValRMSE, valRMSE)
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss, valRMSE)
		}
	}
	return hist, nil
}

// trainBatch computes and accumulates gradients for one minibatch, returning
// the mean loss. Each worker owns a Forward (tape); gradient merging into
// the shared parameters is serialized by a mutex.
func (m *Model) trainBatch(batch []int, train []*Sample, cfg TrainConfig) float64 {
	workers := cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	var (
		mu        sync.Mutex
		totalLoss float64
		wg        sync.WaitGroup
	)
	scale := 1 / float64(len(batch))
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for idx := range work {
				s := train[idx]
				f := nn.NewForward()
				pred := m.Forward(f, s)
				loss := f.Tape.MSE(pred, tensor.Scalar(s.Target))
				f.Backward(loss)
				mu.Lock()
				f.Accumulate(scale)
				totalLoss += loss.Value.At(0, 0) * scale
				mu.Unlock()
			}
		}()
	}
	for _, idx := range batch {
		work <- idx
	}
	close(work)
	wg.Wait()
	return totalLoss
}

// EvalRMSE computes the RMSE of scaled predictions over samples, in
// parallel. Empty input returns 0.
func (m *Model) EvalRMSE(samples []*Sample, workers int) float64 {
	if len(samples) == 0 {
		return 0
	}
	preds := m.PredictAll(samples, workers)
	var acc float64
	for i, s := range samples {
		d := preds[i] - s.Target
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(samples)))
}

// PredictAll returns scaled predictions for all samples, computed across
// workers goroutines (<= 0 defaults to GOMAXPROCS). It shares PredictBatch's
// engine fan-out, just with a caller-chosen worker bound.
func (m *Model) PredictAll(samples []*Sample, workers int) []float64 {
	preds := make([]float64, len(samples))
	m.predictInto(preds, samples, workers)
	return preds
}

// FitIncremental continues optimization from the model's current weights —
// the registry's feedback-retrain entry point. Unlike Train it defaults to a
// short, low-learning-rate schedule suited to folding a small increment of
// measured-runtime samples into an already-trained model without erasing
// what it knows. Zero-valued cfg fields take the incremental defaults
// (Epochs 8, BatchSize 16, LR 1e-3); explicit values win.
func (m *Model) FitIncremental(train, val []*Sample, cfg TrainConfig) (History, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	return m.Train(train, val, cfg)
}
