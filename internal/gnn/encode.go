// Package gnn implements the paper's cost model: a Relational Graph
// Attention Network (RGAT, Busbridge et al.) over ParaGraph representations,
// with the architecture of §IV-B — three relational graph attention
// convolutions, two fully connected layers on the pooled graph embedding, a
// separate embedding of the (teams, threads) features, and a final fully
// connected regression head predicting kernel runtime.
package gnn

import (
	"fmt"
	"math"

	"paragraph/internal/graph"
	"paragraph/internal/tensor"
)

// MaxSubKinds bounds the sub-kind vocabulary (operator codes, OMP directive
// codes); out-of-range codes are clamped.
const MaxSubKinds = 64

// Relation holds the edges of one type in tensorized form.
type Relation struct {
	Src  []int
	Dst  []int
	LogW []float64 // log1p of edge weights, scaled later by WScale
}

// Graph is a ParaGraph encoded for the model: integer node codes, a scalar
// feature column, and per-relation edge lists.
type Graph struct {
	NumNodes int
	Kinds    []int
	SubKinds []int
	Feats    *tensor.Matrix // N×1 scalar node features
	Rels     []Relation     // indexed by edge type
	// WScale divides LogW before it enters attention logits; the dataset
	// fits it so weights land in [0, 1] (the paper's MinMaxScaler).
	WScale float64

	// planBox caches the graph's InferencePlan (see infer.go). It is a
	// pointer so shallow header copies (advisor.EncodeInstance clones the
	// header to override WScale) share one cached plan, and so the plan
	// rides along with the graph in the serving tier's encode cache. Encode
	// installs it; hand-built graphs may leave it nil (InitPlanCache adds
	// it) at the cost of re-deriving the plan on every prediction.
	planBox *planBox
}

// InitPlanCache attaches the lazy inference-plan cache Encode installs
// automatically, for graphs assembled by hand (tests, custom encoders).
// Call it before the graph is shared across goroutines; predictions work
// without it but re-derive the edge-ordering plan on every forward pass.
func (g *Graph) InitPlanCache() {
	if g.planBox == nil {
		g.planBox = &planBox{}
	}
}

// Encode converts a built graph into model form. numRelations must be at
// least the number of edge types used by the graph.
func Encode(g *graph.Graph, numRelations int) (*Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gnn: encoding invalid graph: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("gnn: cannot encode empty graph")
	}
	eg := &Graph{
		NumNodes: g.NumNodes(),
		Kinds:    make([]int, g.NumNodes()),
		SubKinds: make([]int, g.NumNodes()),
		Feats:    tensor.New(g.NumNodes(), 1),
		Rels:     make([]Relation, numRelations),
		WScale:   1,
		planBox:  &planBox{},
	}
	for i, n := range g.Nodes {
		eg.Kinds[i] = n.Kind
		sk := n.SubKind
		if sk < 0 {
			sk = 0
		}
		if sk >= MaxSubKinds {
			sk = MaxSubKinds - 1
		}
		eg.SubKinds[i] = sk
		eg.Feats.Set(i, 0, n.Feature)
	}
	for _, e := range g.Edges {
		if e.Type < 0 || e.Type >= numRelations {
			return nil, fmt.Errorf("gnn: edge type %d exceeds %d relations", e.Type, numRelations)
		}
		r := &eg.Rels[e.Type]
		r.Src = append(r.Src, e.Src)
		r.Dst = append(r.Dst, e.Dst)
		r.LogW = append(r.LogW, math.Log1p(e.Weight))
	}
	return eg, nil
}

// MaxLogWeight returns the largest log1p edge weight in the graph.
func (g *Graph) MaxLogWeight() float64 {
	var mx float64
	for _, r := range g.Rels {
		for _, w := range r.LogW {
			if w > mx {
				mx = w
			}
		}
	}
	return mx
}

// NumEdges returns the total edge count across relations.
func (g *Graph) NumEdges() int {
	n := 0
	for _, r := range g.Rels {
		n += len(r.Src)
	}
	return n
}

// weightColumn materializes relation r's scaled weight column (E×1).
func (g *Graph) weightColumn(r int) *tensor.Matrix {
	rel := g.Rels[r]
	m := tensor.New(len(rel.LogW), 1)
	scale := g.WScale
	if scale <= 0 {
		scale = 1
	}
	for i, w := range rel.LogW {
		m.Data[i] = w / scale
	}
	return m
}

// Sample is one training/evaluation example: an encoded graph, the two
// scaled runtime-configuration features (teams, threads — §III-B: "our
// feature set also includes the number of teams and threads"), the scaled
// regression target, and bookkeeping for metrics.
type Sample struct {
	G      *Graph
	Feats  [2]float64 // scaled (teams, threads)
	Target float64    // scaled runtime target
	RawUS  float64    // unscaled runtime in microseconds
	App    string     // application name (per-app error, Fig. 6)
	Name   string     // instance identifier
}
