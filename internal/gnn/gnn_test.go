package gnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"paragraph/internal/graph"
	"paragraph/internal/nn"
	"paragraph/internal/paragraph"
	"paragraph/internal/tensor"
)

// buildTestGraph returns a ParaGraph for a tiny kernel.
func buildTestGraph(t *testing.T, threads int) *graph.Graph {
	t.Helper()
	src := `
void k(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < 1000; i++) {
        if (a[i] > 0.0) {
            a[i] = a[i] * 2.0;
        }
    }
}`
	g, err := paragraph.BuildKernel(src, paragraph.Options{
		Level:   paragraph.LevelParaGraph,
		Threads: threads,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func encode(t *testing.T, g *graph.Graph) *Graph {
	t.Helper()
	eg, err := Encode(g, int(paragraph.NumEdgeTypes))
	if err != nil {
		t.Fatal(err)
	}
	return eg
}

func TestEncodeShapes(t *testing.T) {
	g := buildTestGraph(t, 1)
	eg := encode(t, g)
	if eg.NumNodes != g.NumNodes() {
		t.Errorf("nodes = %d vs %d", eg.NumNodes, g.NumNodes())
	}
	if eg.NumEdges() != g.NumEdges() {
		t.Errorf("edges = %d vs %d", eg.NumEdges(), g.NumEdges())
	}
	if len(eg.Kinds) != eg.NumNodes || len(eg.SubKinds) != eg.NumNodes {
		t.Error("code arrays wrong length")
	}
	if eg.Feats.Rows != eg.NumNodes || eg.Feats.Cols != 1 {
		t.Errorf("feats shape %dx%d", eg.Feats.Rows, eg.Feats.Cols)
	}
	if len(eg.Rels) != int(paragraph.NumEdgeTypes) {
		t.Errorf("relations = %d", len(eg.Rels))
	}
	// Weighted graph: Child edges must carry positive log-weights.
	var hasWeight bool
	for _, w := range eg.Rels[int(paragraph.Child)].LogW {
		if w > 0 {
			hasWeight = true
		}
	}
	if !hasWeight {
		t.Error("no positive child log-weights")
	}
	if eg.MaxLogWeight() <= 0 {
		t.Error("MaxLogWeight = 0")
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := graph.New([]string{"t"})
	if _, err := Encode(bad, 1); err == nil {
		t.Error("empty graph encoded")
	}
	g := graph.New([]string{"a", "b"})
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(0, 1, 1, 0)
	if _, err := Encode(g, 1); err == nil {
		t.Error("edge type out of relation range accepted")
	}
	corrupt := graph.New([]string{"t"})
	corrupt.AddNode(graph.Node{})
	corrupt.AddEdge(0, 5, 0, 1)
	if _, err := Encode(corrupt, 1); err == nil {
		t.Error("invalid graph encoded")
	}
}

func TestEncodeClampsSubKinds(t *testing.T) {
	g := graph.New([]string{"t"})
	g.AddNode(graph.Node{SubKind: 9999})
	g.AddNode(graph.Node{SubKind: -3})
	eg, err := Encode(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eg.SubKinds[0] != MaxSubKinds-1 || eg.SubKinds[1] != 0 {
		t.Errorf("subkinds = %v", eg.SubKinds)
	}
}

func TestModelForwardDeterministic(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 4))
	s := &Sample{G: eg, Feats: [2]float64{0.5, 0.25}, Target: 0.3}
	m1 := NewModel(Config{Seed: 11, Relations: int(paragraph.NumEdgeTypes)})
	m2 := NewModel(Config{Seed: 11, Relations: int(paragraph.NumEdgeTypes)})
	p1 := m1.Predict(s)
	p2 := m2.Predict(s)
	if p1 != p2 {
		t.Errorf("same seed, different predictions: %v vs %v", p1, p2)
	}
	if math.IsNaN(p1) || math.IsInf(p1, 0) {
		t.Errorf("prediction = %v", p1)
	}
	m3 := NewModel(Config{Seed: 12, Relations: int(paragraph.NumEdgeTypes)})
	if m3.Predict(s) == p1 {
		t.Error("different seeds gave identical predictions (suspicious)")
	}
}

func TestModelSensitivity(t *testing.T) {
	// Predictions must react to (a) the runtime-configuration features and
	// (b) the graph weights — otherwise the representation is ignored.
	m := NewModel(Config{Seed: 3, Relations: int(paragraph.NumEdgeTypes)})
	eg1 := encode(t, buildTestGraph(t, 1))
	eg64 := encode(t, buildTestGraph(t, 64))
	s1 := &Sample{G: eg1, Feats: [2]float64{0.1, 0.1}}
	s2 := &Sample{G: eg1, Feats: [2]float64{0.9, 0.9}}
	if m.Predict(s1) == m.Predict(s2) {
		t.Error("model ignores teams/threads features")
	}
	s3 := &Sample{G: eg64, Feats: [2]float64{0.1, 0.1}}
	if m.Predict(s1) == m.Predict(s3) {
		t.Error("model ignores edge weights (threads=1 vs 64 graphs identical)")
	}
}

func TestNumParamsReasonable(t *testing.T) {
	m := NewModel(Config{Seed: 1, Hidden: 32, Relations: 8, Kinds: 40})
	n := m.NumParams()
	// 3 layers × 8 relations × (32×32 + 2×32 + 1) + embeddings + heads —
	// order 10^5.
	if n < 10000 || n > 1000000 {
		t.Errorf("NumParams = %d, outside sanity range", n)
	}
	if len(m.Params()) == 0 {
		t.Error("no parameters")
	}
	if m.Config().Hidden != 32 {
		t.Error("config not retained")
	}
}

func TestGradientsFlowToAllParameterGroups(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 4))
	s := &Sample{G: eg, Feats: [2]float64{0.5, 0.5}, Target: 1}
	m := NewModel(Config{Seed: 5, Relations: int(paragraph.NumEdgeTypes), Layers: 2, Hidden: 16})
	f := nn.NewForward()
	pred := m.Forward(f, s)
	loss := f.Tape.MSE(pred, tensor.Scalar(s.Target))
	f.Backward(loss)
	grads := f.Gradients()
	var flowing int
	for _, g := range grads {
		if g.Norm2() > 0 {
			flowing++
		}
	}
	// Relations without edges in this graph legitimately get zero grads;
	// but a healthy majority of bound parameters must receive signal.
	if flowing < len(grads)/3 {
		t.Errorf("only %d/%d parameters receive gradient", flowing, len(grads))
	}
	// Specifically the output head and kind embedding must always flow.
	if g := grads[m.out.W]; g == nil || g.Norm2() == 0 {
		t.Error("no gradient at output head")
	}
	if g := grads[m.kindEmb.Table]; g == nil || g.Norm2() == 0 {
		t.Error("no gradient at kind embedding")
	}
}

// TestTrainingLearnsWeightSignal is the package's end-to-end check: build a
// synthetic task where the target is a function of the graph's total edge
// weight (the exact signal ParaGraph adds over the raw AST) and verify
// training reduces validation RMSE far below the untrained model.
func TestTrainingLearnsWeightSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var samples []*Sample
	for _, threads := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		g := buildTestGraph(t, threads)
		eg := encode(t, g)
		eg.WScale = 10 // keep logits tame
		for rep := 0; rep < 6; rep++ {
			tf := rng.Float64()
			// Target depends on the weight structure: more threads → smaller
			// weights → smaller target; plus the feature directly.
			target := eg.MaxLogWeight()/10 + 0.3*tf
			samples = append(samples, &Sample{
				G:      eg,
				Feats:  [2]float64{tf, tf / 2},
				Target: target,
			})
		}
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	split := len(samples) * 8 / 10
	train, val := samples[:split], samples[split:]

	m := NewModel(Config{Seed: 7, Hidden: 16, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	before := m.EvalRMSE(val, 2)
	hist, err := m.Train(train, val, TrainConfig{Epochs: 30, BatchSize: 8, LR: 5e-3, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	after := hist.FinalValRMSE()
	if after >= before*0.5 {
		t.Errorf("training barely helped: before %v, after %v", before, after)
	}
	if after > 0.15 {
		t.Errorf("val RMSE %v too high for learnable synthetic task", after)
	}
	if len(hist.TrainLoss) != 30 || len(hist.ValRMSE) != 30 {
		t.Errorf("history lengths %d/%d", len(hist.TrainLoss), len(hist.ValRMSE))
	}
}

func TestTrainEmptySet(t *testing.T) {
	m := NewModel(Config{Seed: 1})
	if _, err := m.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTrainDeterministicAcrossWorkerCounts(t *testing.T) {
	// Losses may differ between worker counts only through float summation
	// order, so we assert exact determinism for a fixed worker count and
	// closeness across worker counts.
	eg := encode(t, buildTestGraph(t, 4))
	mk := func(workers int) float64 {
		m := NewModel(Config{Seed: 9, Hidden: 8, Layers: 1, Relations: int(paragraph.NumEdgeTypes)})
		var samples []*Sample
		for i := 0; i < 16; i++ {
			samples = append(samples, &Sample{G: eg, Feats: [2]float64{float64(i) / 16, 0}, Target: float64(i) / 16})
		}
		_, err := m.Train(samples, samples, TrainConfig{Epochs: 2, BatchSize: 4, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m.Predict(samples[0])
	}
	p1a := mk(1)
	p1b := mk(1)
	if p1a != p1b {
		t.Errorf("same-config training not deterministic: %v vs %v", p1a, p1b)
	}
	p4 := mk(4)
	if math.Abs(p1a-p4) > 0.05 {
		t.Errorf("worker counts diverge too much: %v vs %v", p1a, p4)
	}
}

func TestPredictAllMatchesPredict(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 2))
	m := NewModel(Config{Seed: 2, Hidden: 8, Layers: 1, Relations: int(paragraph.NumEdgeTypes)})
	var samples []*Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, &Sample{G: eg, Feats: [2]float64{float64(i) / 10, 0.5}})
	}
	batch := m.PredictAll(samples, 4)
	for i, s := range samples {
		if single := m.Predict(s); single != batch[i] {
			t.Errorf("sample %d: %v vs %v", i, single, batch[i])
		}
	}
	if got := m.PredictAll(nil, 4); len(got) != 0 {
		t.Error("PredictAll(nil) non-empty")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	// The serving batcher relies on batch results being interchangeable with
	// per-sample results; assert exact agreement (well under the 1e-9 the
	// service contract promises).
	m := NewModel(Config{Seed: 4, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	var samples []*Sample
	for _, threads := range []int{1, 4, 16, 64} {
		eg := encode(t, buildTestGraph(t, threads))
		eg.WScale = 10
		for i := 0; i < 3; i++ {
			samples = append(samples, &Sample{G: eg, Feats: [2]float64{float64(i) / 3, 0.4}})
		}
	}
	batch := m.PredictBatch(samples)
	if len(batch) != len(samples) {
		t.Fatalf("batch len = %d, want %d", len(batch), len(samples))
	}
	for i, s := range samples {
		if single := m.Predict(s); math.Abs(single-batch[i]) > 1e-9 {
			t.Errorf("sample %d: batch %v vs single %v", i, batch[i], single)
		}
	}
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Error("PredictBatch(nil) non-empty")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 4))
	s := &Sample{G: eg, Feats: [2]float64{0.3, 0.7}}
	cfg := Config{Seed: 21, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)}
	m1 := NewModel(cfg)
	want := m1.Predict(s)

	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Different seed → different weights until loaded.
	m2 := NewModel(Config{Seed: 99, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	if m2.Predict(s) == want {
		t.Fatal("fresh model coincidentally identical; test is vacuous")
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict(s); got != want {
		t.Errorf("prediction after load = %v, want %v", got, want)
	}
	// Architecture mismatch is rejected.
	m3 := NewModel(Config{Seed: 1, Hidden: 16, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	var buf2 bytes.Buffer
	if err := m1.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := m3.Load(&buf2); err == nil {
		t.Error("checkpoint loaded into mismatched architecture")
	}
}

func TestEvalRMSEEmptyAndExact(t *testing.T) {
	m := NewModel(Config{Seed: 2, Hidden: 8, Layers: 1})
	if m.EvalRMSE(nil, 2) != 0 {
		t.Error("empty eval not 0")
	}
	h := History{}
	if !math.IsInf(h.FinalValRMSE(), 1) {
		t.Error("empty history RMSE should be +Inf")
	}
}
