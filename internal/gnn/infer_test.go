package gnn

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"paragraph/internal/paragraph"
	"paragraph/internal/tensor"
)

// The engine's kernels reassociate floating-point sums relative to the tape
// (tiled matmuls, precomputed attention projections W_r·a, fused softmax
// scaling), so engine-vs-tape agreement is gated on relative error, not bit
// equality. Scaled targets live in roughly [0, 1], so the max(1, |tape|)
// denominator makes the bound absolute near zero and relative for large
// magnitudes.
const (
	equivTolF64 = 1e-9 // float64 engine vs float64 tape
	equivTolF32 = 1e-4 // float32 inference-weights engine vs float64 tape
)

// relErr is the relative-equivalence metric the tolerances above bound.
func relErr(engine, tape float64) float64 {
	return math.Abs(engine-tape) / math.Max(1, math.Abs(tape))
}

// equivTrials returns the fuzz iteration count: the default keeps local
// `go test` fast; CI's equivalence-gate step raises it via
// PARAGRAPH_EQUIV_TRIALS.
func equivTrials(def int) int {
	if v := os.Getenv("PARAGRAPH_EQUIV_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// randomEncodedGraph builds an arbitrary encoded graph directly: random
// size (including single-node), random edges per relation (including empty
// relations and self-loops), random weights (including exact zeros).
func randomEncodedGraph(rng *rand.Rand, numRels int) *Graph {
	n := 1 + rng.Intn(12)
	g := &Graph{
		NumNodes: n,
		Kinds:    make([]int, n),
		SubKinds: make([]int, n),
		Feats:    tensor.New(n, 1),
		Rels:     make([]Relation, numRels),
		WScale:   []float64{0, 0.5, 1, 10}[rng.Intn(4)],
	}
	for i := 0; i < n; i++ {
		g.Kinds[i] = rng.Intn(40)
		g.SubKinds[i] = rng.Intn(MaxSubKinds)
		if rng.Float64() < 0.8 { // leave some exact-zero features
			g.Feats.Data[i] = rng.NormFloat64()
		}
	}
	for r := range g.Rels {
		if rng.Float64() < 0.25 {
			continue // empty relation
		}
		e := rng.Intn(3 * n)
		for k := 0; k < e; k++ {
			g.Rels[r].Src = append(g.Rels[r].Src, rng.Intn(n))
			g.Rels[r].Dst = append(g.Rels[r].Dst, rng.Intn(n))
			w := 0.0
			if rng.Float64() < 0.7 {
				w = rng.Float64() * 4
			}
			g.Rels[r].LogW = append(g.Rels[r].LogW, w)
		}
	}
	return g
}

// fuzzEngineVsTape is the shared equivalence fuzz: across random graphs
// (all relation counts, empty relations, single-node graphs), seeds, layer
// counts, both plan-cache states, and the DisableEdgeWeights ablation, the
// engine prediction must stay within tol relative error of the tape path.
func fuzzEngineVsTape(t *testing.T, seed int64, trials int, f32 bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		numRels := 1 + rng.Intn(8)
		cfg := Config{
			Seed:               rng.Int63n(1000),
			Hidden:             []int{4, 8, 16}[rng.Intn(3)],
			Layers:             1 + rng.Intn(3),
			Relations:          numRels,
			DisableEdgeWeights: rng.Intn(2) == 0,
		}
		m := NewModel(cfg)
		m.SetFloat32Inference(f32)
		g := randomEncodedGraph(rng, numRels)
		if trial%2 == 0 {
			g.InitPlanCache() // exercise both the cached and per-call plan paths
		}
		s := &Sample{G: g, Feats: [2]float64{rng.Float64(), rng.Float64()}}
		engine := m.Predict(s)
		tape := m.PredictTape(s)
		if math.IsNaN(engine) || math.IsInf(engine, 0) {
			t.Fatalf("trial %d: engine produced %v (cfg %+v)", trial, engine, cfg)
		}
		if e := relErr(engine, tape); e > tol {
			t.Fatalf("trial %d: engine %v vs tape %v (rel err %v > %v, cfg %+v, nodes %d)",
				trial, engine, tape, e, tol, cfg, g.NumNodes)
		}
	}
}

// TestInferEngineMatchesTape is the golden relaxed-equivalence fuzz gating
// the float64 fast path at ≤1e-9 relative error.
func TestInferEngineMatchesTape(t *testing.T) {
	fuzzEngineVsTape(t, 99, equivTrials(60), false, equivTolF64)
}

// TestInferEngine32MatchesTape gates the float32 inference-weights path at
// ≤1e-4 relative error against the float64 tape.
func TestInferEngine32MatchesTape(t *testing.T) {
	fuzzEngineVsTape(t, 2024, equivTrials(60), true, equivTolF32)
}

// TestInferEngineMatchesTapeOnRealGraph repeats the equivalence check on a
// real encoded kernel graph (the Encode path installs the plan cache) and
// across advisor-style header copies that override WScale, in both element
// widths.
func TestInferEngineMatchesTapeOnRealGraph(t *testing.T) {
	for _, threads := range []int{1, 16, 128} {
		eg := encode(t, buildTestGraph(t, threads))
		for _, disabled := range []bool{false, true} {
			for _, f32 := range []bool{false, true} {
				m := NewModel(Config{Seed: 5, Hidden: 16, Layers: 3,
					Relations: int(paragraph.NumEdgeTypes), DisableEdgeWeights: disabled})
				m.SetFloat32Inference(f32)
				tol := equivTolF64
				if f32 {
					tol = equivTolF32
				}
				for _, wscale := range []float64{1, 10} {
					scaled := *eg // what advisor.EncodeInstance does
					scaled.WScale = wscale
					s := &Sample{G: &scaled, Feats: [2]float64{0.4, 0.6}}
					engine, tape := m.Predict(s), m.PredictTape(s)
					if e := relErr(engine, tape); e > tol {
						t.Errorf("threads=%d disabled=%v f32=%v wscale=%v: engine %v vs tape %v (rel err %v)",
							threads, disabled, f32, wscale, engine, tape, e)
					}
				}
			}
		}
	}
}

// TestInferRankingMatchesTape pins what the advisor actually consumes: the
// ranking of the paper-style kernel graph across thread configurations.
// Wherever the tape separates two configurations by a clear margin, both
// engine paths must order them the same way.
func TestInferRankingMatchesTape(t *testing.T) {
	const margin = 1e-3
	threads := []int{1, 4, 16, 64, 256, 1024}
	var samples []*Sample
	for _, th := range threads {
		eg := encode(t, buildTestGraph(t, th))
		eg.WScale = 10
		samples = append(samples, &Sample{G: eg, Feats: [2]float64{0.5, float64(th) / 1024}})
	}
	m := NewModel(Config{Seed: 7, Relations: int(paragraph.NumEdgeTypes)})
	tape := make([]float64, len(samples))
	for i, s := range samples {
		tape[i] = m.PredictTape(s)
	}
	for _, f32 := range []bool{false, true} {
		m.SetFloat32Inference(f32)
		engine := m.PredictBatch(samples)
		for i := range samples {
			for j := range samples {
				if tape[i] < tape[j]-margin && engine[i] >= engine[j] {
					t.Errorf("f32=%v: tape orders threads %d (%v) below %d (%v) but engine says %v >= %v",
						f32, threads[i], tape[i], threads[j], tape[j], engine[i], engine[j])
				}
			}
		}
	}
}

// TestInferInvalidation pins the staleness contract: parameter mutations
// through the package's own paths (Load) refresh the precomputed attention
// projections, and direct mutations are covered by InvalidateInference.
func TestInferInvalidation(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 8))
	s := &Sample{G: eg, Feats: [2]float64{0.5, 0.5}}
	m := NewModel(Config{Seed: 11, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	m.Predict(s) // build the derived weights

	// Direct mutation of an attention vector: without invalidation the
	// engine would keep serving the stale projection.
	l := m.layers[0]
	l.aSrc[0].Value.Data[0] += 0.5
	m.InvalidateInference()
	if e := relErr(m.Predict(s), m.PredictTape(s)); e > equivTolF64 {
		t.Errorf("after direct mutation + InvalidateInference: rel err %v", e)
	}

	// Load must invalidate on its own: round-trip different weights through
	// a checkpoint and check the engine tracks them.
	donor := NewModel(Config{Seed: 99, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Predict(s), donor.Predict(s); got != want {
		t.Errorf("after Load: engine %v, donor engine %v (stale precomputed weights?)", got, want)
	}
	if e := relErr(m.Predict(s), m.PredictTape(s)); e > equivTolF64 {
		t.Errorf("after Load: rel err %v vs tape", e)
	}
}

// TestInferPlanSharedAcrossHeaderCopies asserts the plan is computed once
// per encoded graph even when many advisor-scaled header copies exist.
func TestInferPlanSharedAcrossHeaderCopies(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 4))
	p1 := eg.plan()
	scaled := *eg
	scaled.WScale = 123
	if p2 := scaled.plan(); p2 != p1 {
		t.Error("header copy rebuilt the inference plan instead of sharing it")
	}
}

// TestPredictBatchConcurrentRace hammers the pooled workspaces: many
// goroutines run overlapping PredictBatch calls (plus single Predicts) on
// one model and every result must agree with a serial reference. Run under
// -race (CI does) this is the workspace-safety gate; the float32 pass also
// exercises the lazily built converted weight set under concurrency.
func TestPredictBatchConcurrentRace(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		m := NewModel(Config{Seed: 3, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
		m.SetFloat32Inference(f32)
		rng := rand.New(rand.NewSource(4))
		var samples []*Sample
		for i := 0; i < 24; i++ {
			g := randomEncodedGraph(rng, int(paragraph.NumEdgeTypes))
			g.InitPlanCache()
			samples = append(samples, &Sample{G: g, Feats: [2]float64{float64(i) / 24, 0.5}})
		}
		want := make([]float64, len(samples))
		for i, s := range samples {
			want[i] = m.Predict(s)
		}
		m.InvalidateInference() // make the concurrent phase rebuild lazily
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for iter := 0; iter < 20; iter++ {
					if iter%3 == 0 {
						s := samples[(w+iter)%len(samples)]
						if got := m.Predict(s); got != want[(w+iter)%len(samples)] {
							errs <- fmt.Sprintf("f32=%v worker %d: single predict drifted", f32, w)
							return
						}
						continue
					}
					got := m.PredictBatch(samples)
					for i := range got {
						if got[i] != want[i] {
							errs <- fmt.Sprintf("f32=%v worker %d iter %d: sample %d = %v, want %v",
								f32, w, iter, i, got[i], want[i])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	}
}

// TestInferForwardZeroAllocs is the allocation regression gate: after
// warm-up, a steady-state engine forward pass over an Encode-built graph
// (plan cached, workspace pooled and right-sized, derived weights built)
// must not touch the heap — in either element width.
func TestInferForwardZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful unraced")
	}
	eg := encode(t, buildTestGraph(t, 8))
	eg.WScale = 10
	s := &Sample{G: eg, Feats: [2]float64{0.5, 0.5}}
	for _, f32 := range []bool{false, true} {
		m := NewModel(Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
		m.SetFloat32Inference(f32)
		m.Predict(s) // build the plan and derived weights, grow the workspace
		if allocs := testing.AllocsPerRun(100, func() { m.Predict(s) }); allocs != 0 {
			t.Errorf("f32=%v: steady-state engine forward allocates %v times per run, want 0", f32, allocs)
		}
	}
}

// TestPredictBatchEmptyAndSingle pins the degenerate batch paths.
func TestPredictBatchEmptyAndSingle(t *testing.T) {
	m := NewModel(Config{Seed: 2, Hidden: 8, Layers: 1, Relations: int(paragraph.NumEdgeTypes)})
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Error("PredictBatch(nil) non-empty")
	}
	eg := encode(t, buildTestGraph(t, 2))
	s := &Sample{G: eg, Feats: [2]float64{0.2, 0.8}}
	batch := m.PredictBatch([]*Sample{s})
	if len(batch) != 1 || batch[0] != m.Predict(s) {
		t.Errorf("single-sample batch %v vs predict %v", batch, m.Predict(s))
	}
}
