package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"paragraph/internal/paragraph"
	"paragraph/internal/tensor"
)

// equivTolerance is the engine-vs-tape agreement the PR guarantees. The
// engine reproduces the tape's arithmetic exactly, so the observed
// difference is zero; the tolerance leaves headroom for architectures whose
// compilers fuse multiply-adds.
const equivTolerance = 1e-12

// randomEncodedGraph builds an arbitrary encoded graph directly: random
// size (including single-node), random edges per relation (including empty
// relations and self-loops), random weights (including exact zeros).
func randomEncodedGraph(rng *rand.Rand, numRels int) *Graph {
	n := 1 + rng.Intn(12)
	g := &Graph{
		NumNodes: n,
		Kinds:    make([]int, n),
		SubKinds: make([]int, n),
		Feats:    tensor.New(n, 1),
		Rels:     make([]Relation, numRels),
		WScale:   []float64{0, 0.5, 1, 10}[rng.Intn(4)],
	}
	for i := 0; i < n; i++ {
		g.Kinds[i] = rng.Intn(40)
		g.SubKinds[i] = rng.Intn(MaxSubKinds)
		if rng.Float64() < 0.8 { // leave some exact-zero features
			g.Feats.Data[i] = rng.NormFloat64()
		}
	}
	for r := range g.Rels {
		if rng.Float64() < 0.25 {
			continue // empty relation
		}
		e := rng.Intn(3 * n)
		for k := 0; k < e; k++ {
			g.Rels[r].Src = append(g.Rels[r].Src, rng.Intn(n))
			g.Rels[r].Dst = append(g.Rels[r].Dst, rng.Intn(n))
			w := 0.0
			if rng.Float64() < 0.7 {
				w = rng.Float64() * 4
			}
			g.Rels[r].LogW = append(g.Rels[r].LogW, w)
		}
	}
	return g
}

// TestInferEngineMatchesTape is the golden equivalence fuzz gating the fast
// path: across random graphs (all relation counts, empty relations,
// single-node graphs), seeds, layer counts, both plan-cache states, and the
// DisableEdgeWeights ablation, the engine prediction must match the tape
// path within 1e-12.
func TestInferEngineMatchesTape(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		numRels := 1 + rng.Intn(8)
		cfg := Config{
			Seed:               rng.Int63n(1000),
			Hidden:             []int{4, 8, 16}[rng.Intn(3)],
			Layers:             1 + rng.Intn(3),
			Relations:          numRels,
			DisableEdgeWeights: rng.Intn(2) == 0,
		}
		m := NewModel(cfg)
		g := randomEncodedGraph(rng, numRels)
		if trial%2 == 0 {
			g.InitPlanCache() // exercise both the cached and per-call plan paths
		}
		s := &Sample{G: g, Feats: [2]float64{rng.Float64(), rng.Float64()}}
		engine := m.Predict(s)
		tape := m.PredictTape(s)
		if math.IsNaN(engine) || math.IsInf(engine, 0) {
			t.Fatalf("trial %d: engine produced %v (cfg %+v)", trial, engine, cfg)
		}
		if d := math.Abs(engine - tape); d > equivTolerance {
			t.Fatalf("trial %d: engine %v vs tape %v (diff %v, cfg %+v, nodes %d)",
				trial, engine, tape, d, cfg, g.NumNodes)
		}
	}
}

// TestInferEngineMatchesTapeOnRealGraph repeats the equivalence check on a
// real encoded kernel graph (the Encode path installs the plan cache) and
// across advisor-style header copies that override WScale.
func TestInferEngineMatchesTapeOnRealGraph(t *testing.T) {
	for _, threads := range []int{1, 16, 128} {
		eg := encode(t, buildTestGraph(t, threads))
		for _, disabled := range []bool{false, true} {
			m := NewModel(Config{Seed: 5, Hidden: 16, Layers: 3,
				Relations: int(paragraph.NumEdgeTypes), DisableEdgeWeights: disabled})
			for _, wscale := range []float64{1, 10} {
				scaled := *eg // what advisor.EncodeInstance does
				scaled.WScale = wscale
				s := &Sample{G: &scaled, Feats: [2]float64{0.4, 0.6}}
				engine, tape := m.Predict(s), m.PredictTape(s)
				if d := math.Abs(engine - tape); d > equivTolerance {
					t.Errorf("threads=%d disabled=%v wscale=%v: engine %v vs tape %v (diff %v)",
						threads, disabled, wscale, engine, tape, d)
				}
			}
		}
	}
}

// TestInferPlanSharedAcrossHeaderCopies asserts the plan is computed once
// per encoded graph even when many advisor-scaled header copies exist.
func TestInferPlanSharedAcrossHeaderCopies(t *testing.T) {
	eg := encode(t, buildTestGraph(t, 4))
	p1 := eg.plan()
	scaled := *eg
	scaled.WScale = 123
	if p2 := scaled.plan(); p2 != p1 {
		t.Error("header copy rebuilt the inference plan instead of sharing it")
	}
}

// TestPredictBatchConcurrentRace hammers the pooled workspaces: many
// goroutines run overlapping PredictBatch calls (plus single Predicts) on
// one model and every result must agree with a serial reference. Run under
// -race (CI does) this is the workspace-safety gate.
func TestPredictBatchConcurrentRace(t *testing.T) {
	m := NewModel(Config{Seed: 3, Hidden: 8, Layers: 2, Relations: int(paragraph.NumEdgeTypes)})
	rng := rand.New(rand.NewSource(4))
	var samples []*Sample
	for i := 0; i < 24; i++ {
		g := randomEncodedGraph(rng, int(paragraph.NumEdgeTypes))
		g.InitPlanCache()
		samples = append(samples, &Sample{G: g, Feats: [2]float64{float64(i) / 24, 0.5}})
	}
	want := make([]float64, len(samples))
	for i, s := range samples {
		want[i] = m.Predict(s)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				if iter%3 == 0 {
					s := samples[(w+iter)%len(samples)]
					if got := m.Predict(s); got != want[(w+iter)%len(samples)] {
						errs <- fmt.Sprintf("worker %d: single predict drifted", w)
						return
					}
					continue
				}
				got := m.PredictBatch(samples)
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Sprintf("worker %d iter %d: sample %d = %v, want %v",
							w, iter, i, got[i], want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestInferForwardZeroAllocs is the allocation regression gate: after
// warm-up, a steady-state engine forward pass over an Encode-built graph
// (plan cached, workspace pooled and right-sized) must not touch the heap.
func TestInferForwardZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful unraced")
	}
	eg := encode(t, buildTestGraph(t, 8))
	eg.WScale = 10
	s := &Sample{G: eg, Feats: [2]float64{0.5, 0.5}}
	m := NewModel(Config{Seed: 1, Relations: int(paragraph.NumEdgeTypes)})
	m.Predict(s) // build the plan, grow the workspace
	if allocs := testing.AllocsPerRun(100, func() { m.Predict(s) }); allocs != 0 {
		t.Errorf("steady-state engine forward allocates %v times per run, want 0", allocs)
	}
}

// TestPredictBatchEmptyAndSingle pins the degenerate batch paths.
func TestPredictBatchEmptyAndSingle(t *testing.T) {
	m := NewModel(Config{Seed: 2, Hidden: 8, Layers: 1, Relations: int(paragraph.NumEdgeTypes)})
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Error("PredictBatch(nil) non-empty")
	}
	eg := encode(t, buildTestGraph(t, 2))
	s := &Sample{G: eg, Feats: [2]float64{0.2, 0.8}}
	batch := m.PredictBatch([]*Sample{s})
	if len(batch) != 1 || batch[0] != m.Predict(s) {
		t.Errorf("single-sample batch %v vs predict %v", batch, m.Predict(s))
	}
}
