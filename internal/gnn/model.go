package gnn

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"paragraph/internal/autodiff"
	"paragraph/internal/nn"
	"paragraph/internal/tensor"
)

// featRow lays the two runtime-configuration features out as a 1×2 input.
// The tape path builds one per pass because the tape owns its inputs until
// Backward finishes; the inference engine keeps the row in its pooled
// workspace instead (see inferWorkspace.featIn).
func featRow(f [2]float64) *tensor.Matrix {
	return tensor.FromData(1, 2, []float64{f[0], f[1]})
}

// onesRowConst is the shared 1×1 constant that offsets message scales to
// 1 + c·w̃. It is bound read-only as a tape constant, so one package-level
// matrix serves every pass (previously each forward allocated one per
// relation per layer).
var onesRowConst = tensor.Scalar(1)

// Config shapes the model.
type Config struct {
	Hidden     int     // node embedding width (default 32)
	FeatHidden int     // width of the (teams, threads) branch (default 16)
	Layers     int     // RGAT convolution count (paper: 3)
	Relations  int     // edge-type count (ParaGraph: 8)
	Kinds      int     // node-kind vocabulary size
	LeakyAlpha float64 // attention LeakyReLU slope (default 0.2)
	Seed       int64

	// DisableEdgeWeights cuts the static-weight message-scaling path
	// (α·(1+c_r·w̃)·q → α·q), for ablating the design choice of how
	// ParaGraph's W enters the network. Distinct from the representation
	// ablation (Table IV), which removes the weights from the graph itself.
	DisableEdgeWeights bool
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.FeatHidden <= 0 {
		c.FeatHidden = 16
	}
	if c.Layers <= 0 {
		c.Layers = 3
	}
	if c.Relations <= 0 {
		c.Relations = 8
	}
	if c.Kinds <= 0 {
		c.Kinds = 40
	}
	if c.LeakyAlpha <= 0 {
		c.LeakyAlpha = 0.2
	}
	return c
}

// rgatLayer is one relational graph attention convolution. Attention is
// computed within each relation (WIRGAT): per relation r, additive logits
// over edges — aSrc·(W_r h_src) + aDst·(W_r h_dst) + c_r·w̃_e, softmax over
// each node's incoming r-edges, message aggregation, then summation across
// relations plus a self-loop projection.
type rgatLayer struct {
	w         []*nn.Parameter // per-relation projection Hidden×Hidden
	aSrc      []*nn.Parameter // per-relation source attention Hidden×1
	aDst      []*nn.Parameter // per-relation destination attention Hidden×1
	wCoef     []*nn.Parameter // per-relation edge-weight coefficient 1×1
	self      *nn.Parameter   // self-loop projection Hidden×Hidden
	bias      *nn.Parameter   // 1×Hidden
	alpha     float64
	noWeights bool
}

func newRGATLayer(name string, cfg Config, rng *rand.Rand) *rgatLayer {
	l := &rgatLayer{alpha: cfg.LeakyAlpha, noWeights: cfg.DisableEdgeWeights}
	for r := 0; r < cfg.Relations; r++ {
		l.w = append(l.w, nn.GlorotParameter(fmt.Sprintf("%s.w%d", name, r), cfg.Hidden, cfg.Hidden, rng))
		l.aSrc = append(l.aSrc, nn.GlorotParameter(fmt.Sprintf("%s.asrc%d", name, r), cfg.Hidden, 1, rng))
		l.aDst = append(l.aDst, nn.GlorotParameter(fmt.Sprintf("%s.adst%d", name, r), cfg.Hidden, 1, rng))
		c := nn.NewParameter(fmt.Sprintf("%s.wcoef%d", name, r), 1, 1)
		c.Value.Set(0, 0, 1) // start by trusting the static weights
		l.wCoef = append(l.wCoef, c)
	}
	l.self = nn.GlorotParameter(name+".self", cfg.Hidden, cfg.Hidden, rng)
	l.bias = nn.NewParameter(name+".bias", 1, cfg.Hidden)
	return l
}

func (l *rgatLayer) params() []*nn.Parameter {
	var ps []*nn.Parameter
	ps = append(ps, l.w...)
	ps = append(ps, l.aSrc...)
	ps = append(ps, l.aDst...)
	ps = append(ps, l.wCoef...)
	ps = append(ps, l.self, l.bias)
	return ps
}

// apply runs the convolution over h (N×Hidden) for graph g.
func (l *rgatLayer) apply(f *nn.Forward, g *Graph, h *autodiff.Var) *autodiff.Var {
	tp := f.Tape
	out := tp.AddBias(tp.MatMul(h, f.Bind(l.self)), f.Bind(l.bias))
	for r := range g.Rels {
		if r >= len(l.w) {
			break
		}
		rel := &g.Rels[r]
		if len(rel.Src) == 0 {
			continue
		}
		q := tp.MatMul(h, f.Bind(l.w[r]))
		srcScore := tp.MatMul(q, f.Bind(l.aSrc[r]))
		dstScore := tp.MatMul(q, f.Bind(l.aDst[r]))
		logits := tp.Add(tp.GatherRows(srcScore, rel.Src), tp.GatherRows(dstScore, rel.Dst))
		logits = tp.LeakyReLU(logits, l.alpha)
		attn := tp.SegmentSoftmax(logits, rel.Dst, g.NumNodes)
		// Static edge weights (ParaGraph's W) scale the messages through a
		// learned per-relation coefficient: α·(1 + c_r·w̃)·q_src. A purely
		// logit-side weight term would vanish on tree-shaped relations —
		// softmax over a single incoming Child edge is constant — so the
		// multiplicative path is what lets execution counts reach the
		// embedding. Non-Child relations carry zero weight and reduce to
		// plain attention.
		msgs := tp.MulColBroadcast(tp.GatherRows(q, rel.Src), attn)
		if !l.noWeights {
			wcol := tp.Const(g.weightColumn(r))
			wterm := tp.MatMul(wcol, f.Bind(l.wCoef[r]))
			scale := tp.AddBias(wterm, tp.Const(onesRowConst))
			msgs = tp.MulColBroadcast(msgs, scale)
		}
		out = tp.Add(out, tp.ScatterAddRows(msgs, rel.Dst, g.NumNodes))
	}
	return out
}

// Model is the full ParaGraph cost model.
type Model struct {
	cfg Config

	kindEmb *nn.Embedding
	subEmb  *nn.Embedding
	featVec *nn.Parameter // 1×Hidden projection of the scalar node feature

	layers []*rgatLayer

	fc1    *nn.Linear // graph-embedding path
	fc2    *nn.Linear
	featFC *nn.Linear // (teams, threads) path
	out    *nn.Linear // regression head

	params []*nn.Parameter

	// wsPool recycles inference workspaces (see infer.go) across
	// Predict/PredictBatch calls; each borrowed workspace is used by one
	// goroutine at a time.
	wsPool sync.Pool

	// Derived inference weights (see inferparams.go): precomputed attention
	// projections and, when f32Mode is set, the converted float32 weight
	// set. Rebuilt lazily after any invalidation.
	inferMu sync.Mutex
	inferP  atomic.Pointer[inferModel]
	f32Mode atomic.Bool
}

// NewModel constructs the model with seeded initialization.
func NewModel(cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}
	m.kindEmb = nn.NewEmbedding("kind", cfg.Kinds, cfg.Hidden, rng)
	m.subEmb = nn.NewEmbedding("subkind", MaxSubKinds, cfg.Hidden, rng)
	m.featVec = nn.GlorotParameter("featvec", 1, cfg.Hidden, rng)
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, newRGATLayer(fmt.Sprintf("conv%d", i), cfg, rng))
	}
	m.fc1 = nn.NewLinear("fc1", cfg.Hidden, cfg.Hidden, rng)
	m.fc2 = nn.NewLinear("fc2", cfg.Hidden, cfg.Hidden, rng)
	m.featFC = nn.NewLinear("featfc", 2, cfg.FeatHidden, rng)
	m.out = nn.NewLinear("out", cfg.Hidden+cfg.FeatHidden, 1, rng)

	m.params = append(m.params, m.kindEmb.Params()...)
	m.params = append(m.params, m.subEmb.Params()...)
	m.params = append(m.params, m.featVec)
	for _, l := range m.layers {
		m.params = append(m.params, l.params()...)
	}
	m.params = append(m.params, m.fc1.Params()...)
	m.params = append(m.params, m.fc2.Params()...)
	m.params = append(m.params, m.featFC.Params()...)
	m.params = append(m.params, m.out.Params()...)
	m.wsPool.New = func() any { return new(inferWorkspace) }
	return m
}

// Config returns the model configuration (with defaults resolved).
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Parameter { return m.params }

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.Value.Data)
	}
	return n
}

// Forward computes the scaled runtime prediction (1×1) for one sample.
func (m *Model) Forward(f *nn.Forward, s *Sample) *autodiff.Var {
	tp := f.Tape
	// Node features: kind embedding + sub-kind embedding + scalar feature
	// projected through featVec.
	h := tp.Add(m.kindEmb.Apply(f, s.G.Kinds), m.subEmb.Apply(f, s.G.SubKinds))
	featProj := tp.MatMul(tp.Const(s.G.Feats), f.Bind(m.featVec))
	h = tp.Add(h, featProj)

	for _, l := range m.layers {
		h = tp.ReLU(l.apply(f, s.G, h))
	}

	pooled := tp.MeanRows(h)
	emb := tp.ReLU(m.fc1.Apply(f, pooled))
	emb = tp.ReLU(m.fc2.Apply(f, emb))

	featIn := tp.Const(featRow(s.Feats))
	featEmb := tp.ReLU(m.featFC.Apply(f, featIn))

	return m.out.Apply(f, tp.ConcatCols(emb, featEmb))
}

// Predict returns the scaled prediction for a sample. It routes through the
// inference engine (infer.go): a pooled, allocation-free forward pass whose
// result matches the tape path (PredictTape) to a tight relative tolerance
// (≤1e-9 in the default float64 mode, ≤1e-4 with float32 inference weights;
// see the equivalence tests). The engine's kernels reassociate sums —
// tiled matmuls, precomputed attention projections — so agreement is
// relaxed-equivalent rather than bit-exact.
func (m *Model) Predict(s *Sample) float64 {
	ws := m.acquireWS()
	v := m.inferForward(ws, s)
	m.releaseWS(ws)
	return v
}

// PredictTape is the reference prediction: the autodiff tape path Forward
// uses for training, run on an inference tape. It exists for the engine
// equivalence tests and benchmarks; serving traffic should use Predict.
func (m *Model) PredictTape(s *Sample) float64 {
	f := nn.NewInference()
	return m.Forward(f, s).Value.At(0, 0)
}

// PredictBatch returns scaled predictions for a batch of samples, fanning
// the batch across a bounded worker pool (at most GOMAXPROCS goroutines)
// with one pooled engine workspace per worker. Each sample's forward
// computation is independent of its batchmates, so the results are
// identical to calling Predict per sample. This is the fast path the
// serving batcher (internal/serve) coalesces concurrent requests onto.
// PredictAll is the same fan-out with a caller-chosen worker bound.
func (m *Model) PredictBatch(samples []*Sample) []float64 {
	out := make([]float64, len(samples))
	m.predictInto(out, samples, 0)
	return out
}

// predictInto fans engine forward passes over samples across a bounded
// worker pool, writing predictions into out (same length as samples).
// workers <= 0 defaults to GOMAXPROCS; the bound is clamped to the sample
// count, and a single-worker run stays on the calling goroutine.
func (m *Model) predictInto(out []float64, samples []*Sample, workers int) {
	if len(samples) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	if workers <= 1 {
		ws := m.acquireWS()
		for i, s := range samples {
			out[i] = m.inferForward(ws, s)
		}
		m.releaseWS(ws)
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := m.acquireWS()
			defer m.releaseWS(ws)
			for i := range work {
				out[i] = m.inferForward(ws, samples[i])
			}
		}()
	}
	for i := range samples {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Save writes the model weights as a checkpoint. The architecture (Config)
// is not stored; Load must be called on a model built with the same Config.
// internal/registry pairs the weights with a manifest carrying the Config.
func (m *Model) Save(w io.Writer) error { return nn.SaveParams(w, m.params) }

// Load restores weights from a checkpoint produced by Save on an
// identically-configured model, discarding any precomputed inference
// weights derived from the previous values.
func (m *Model) Load(r io.Reader) error {
	err := nn.LoadParams(r, m.params)
	m.InvalidateInference()
	return err
}

// Checksum fingerprints the current weights (see nn.ChecksumParams).
func (m *Model) Checksum() string { return nn.ChecksumParams(m.params) }
