package gnn

import (
	"paragraph/internal/tensor"
)

// This file holds inferModel: the weight-derived constants of the inference
// engine, computed once per checkpoint instead of once per forward pass.
// Training mutates parameters in place (Adam steps, checkpoint loads), so
// the derived view is invalidated on every mutation the package performs
// (Train's optimizer steps, Load) and rebuilt lazily on the next Predict.
// Code that mutates parameter values directly — tests, ablation tooling —
// must call InvalidateInference afterwards.

// inferLayerExtras carries one convolution's precomputed attention
// projections: pSrc[r] = W_r·aSrc_r and pDst[r] = W_r·aDst_r (length
// Hidden). The tape scores an edge as (h·W_r)·a; the engine reassociates to
// h·(W_r·a), turning the per-node score into a single H-dot against these
// vectors — the H²-per-node projection cost disappears from the score path
// entirely.
type inferLayerExtras struct {
	pSrc [][]float64
	pDst [][]float64
}

// layer32 is one convolution's weights converted to float32.
type layer32 struct {
	w     []*tensor.Matrix32 // per-relation projection H×H
	pSrc  [][]float32        // per-relation W_r·aSrc, length H
	pDst  [][]float32        // per-relation W_r·aDst, length H
	wCoef []float32          // per-relation edge-weight coefficient
	self  *tensor.Matrix32   // H×H
	bias  *tensor.Matrix32   // 1×H
	alpha float32
}

// weights32 is the full float32 inference weight set, converted from the
// float64 parameters at build time. Derived vectors (pSrc/pDst) are
// computed in float64 first and rounded once, so conversion error does not
// compound through the precomputation.
type weights32 struct {
	kindTab *tensor.Matrix32
	subTab  *tensor.Matrix32
	featVec []float32

	layers []layer32

	fc1W, fc1B   *tensor.Matrix32
	fc2W, fc2B   *tensor.Matrix32
	featW, featB *tensor.Matrix32
	outW, outB   *tensor.Matrix32

	noWeights bool
}

// inferModel is the engine's derived view of the model weights: always the
// float64 attention projections, plus the converted float32 weight set when
// float32 inference is enabled. It is immutable once built and shared by
// every concurrent forward pass via an atomic pointer.
type inferModel struct {
	layers []inferLayerExtras
	f32    *weights32
}

// inferParams returns the current derived weights, building them under the
// mutex on first use after an invalidation. The double-checked atomic load
// keeps the steady-state cost of a forward pass at one atomic read.
func (m *Model) inferParams() *inferModel {
	if p := m.inferP.Load(); p != nil {
		return p
	}
	m.inferMu.Lock()
	defer m.inferMu.Unlock()
	if p := m.inferP.Load(); p != nil {
		return p
	}
	p := m.buildInferModel()
	m.inferP.Store(p)
	return p
}

// InvalidateInference discards the precomputed inference weights; the next
// Predict rebuilds them from the current parameter values. The package
// invalidates after its own parameter mutations (Train's optimizer steps,
// Load); call this after mutating parameter values directly.
func (m *Model) InvalidateInference() { m.inferP.Store(nil) }

// PrecomputeInference builds the derived inference weights eagerly, so the
// first request served by a freshly loaded model does not pay the build.
func (m *Model) PrecomputeInference() { m.inferParams() }

// SetFloat32Inference switches the inference engine between float64
// arithmetic (the default, ≤1e-9 relative error against the tape) and
// converted float32 weights (≤1e-4, roughly half the memory traffic).
// Training and the tape path are always float64; the switch only affects
// Predict/PredictBatch.
func (m *Model) SetFloat32Inference(on bool) {
	if m.f32Mode.Swap(on) != on {
		m.InvalidateInference()
	}
}

// Float32Inference reports whether the engine serves the float32 path.
func (m *Model) Float32Inference() bool { return m.f32Mode.Load() }

// buildInferModel derives the inference constants from the current
// parameter values.
func (m *Model) buildInferModel() *inferModel {
	ip := &inferModel{layers: make([]inferLayerExtras, len(m.layers))}
	for li, l := range m.layers {
		ex := &ip.layers[li]
		ex.pSrc = make([][]float64, len(l.w))
		ex.pDst = make([][]float64, len(l.w))
		for r := range l.w {
			ex.pSrc[r] = projectAttention(l.w[r].Value, l.aSrc[r].Value)
			ex.pDst[r] = projectAttention(l.w[r].Value, l.aDst[r].Value)
		}
	}
	if m.f32Mode.Load() {
		ip.f32 = m.buildWeights32(ip)
	}
	return ip
}

// projectAttention computes W·a for an H×H projection and an H×1 attention
// vector: the precomputed form of the engine's attention scores.
func projectAttention(w, a *tensor.Matrix) []float64 {
	out := make([]float64, w.Rows)
	for i := range out {
		out[i] = tensor.Dot(w.Row(i), a.Data)
	}
	return out
}

// buildWeights32 converts the parameter set (and the already-derived
// float64 projections) to float32.
func (m *Model) buildWeights32(ip *inferModel) *weights32 {
	w := &weights32{
		kindTab: tensor.Convert32(m.kindEmb.Table.Value),
		subTab:  tensor.Convert32(m.subEmb.Table.Value),
		featVec: tensor.Convert32Slice(m.featVec.Value.Data),
		fc1W:    tensor.Convert32(m.fc1.W.Value),
		fc1B:    tensor.Convert32(m.fc1.B.Value),
		fc2W:    tensor.Convert32(m.fc2.W.Value),
		fc2B:    tensor.Convert32(m.fc2.B.Value),
		featW:   tensor.Convert32(m.featFC.W.Value),
		featB:   tensor.Convert32(m.featFC.B.Value),
		outW:    tensor.Convert32(m.out.W.Value),
		outB:    tensor.Convert32(m.out.B.Value),
	}
	for li, l := range m.layers {
		w.noWeights = l.noWeights
		l32 := layer32{
			self:  tensor.Convert32(l.self.Value),
			bias:  tensor.Convert32(l.bias.Value),
			alpha: float32(l.alpha),
		}
		for r := range l.w {
			l32.w = append(l32.w, tensor.Convert32(l.w[r].Value))
			l32.pSrc = append(l32.pSrc, tensor.Convert32Slice(ip.layers[li].pSrc[r]))
			l32.pDst = append(l32.pDst, tensor.Convert32Slice(ip.layers[li].pDst[r]))
			l32.wCoef = append(l32.wCoef, float32(l.wCoef[r].Value.Data[0]))
		}
		w.layers = append(w.layers, l32)
	}
	return w
}
