//go:build race

package gnn

// raceEnabled reports that the race detector is instrumenting this build;
// its shadow-memory bookkeeping allocates, so allocation-count assertions
// are skipped.
const raceEnabled = true
