package gnn

import (
	"math"
	"sync"
	"sync/atomic"

	"paragraph/internal/tensor"
)

// This file is the inference engine: the allocation-free forward pass behind
// Predict/PredictBatch. The autodiff tape (Forward) remains the training
// path and the reference semantics; the engine reproduces its arithmetic
// operation for operation — same kernel loop bodies, same accumulation
// order — so predictions agree bit for bit (TestInferEngineMatchesTape
// enforces ≤ 1e-12, and in practice the difference is exactly zero).
//
// Two precomputed structures make the hot path cheap:
//
//   - InferencePlan: per encoded Graph, derived once and cached in the graph
//     (and therefore in the serving tier's encode cache). It re-orders each
//     relation's edge list CSR-style — grouped by destination node, original
//     order preserved within a group — so attention softmax and message
//     aggregation become one loop nest over contiguous runs instead of six
//     tape ops materializing six fresh matrices.
//
//   - inferWorkspace: the scratch matrices of one forward pass, sized from
//     the model Config and graph shape, backed by a tensor.Arena and pooled
//     on the Model via sync.Pool. In steady state a forward pass performs
//     zero heap allocations (asserted by TestInferForwardZeroAllocs).

// relPlan is one relation's edges re-ordered by destination node.
type relPlan struct {
	src      []int     // source node per edge, destination-grouped
	logW     []float64 // raw log1p edge weight per edge, same order
	runStart []int     // len(runs)+1 offsets into src/logW
	runDst   []int     // destination node of each run
	incident []int     // sorted union of source and destination nodes
}

// InferencePlan is the per-graph constant structure of the fused RGAT path:
// destination-grouped edge lists for every relation plus the longest
// attention segment (which sizes the softmax scratch buffer). It depends
// only on the graph topology — not on WScale or any model parameter — so
// one plan serves every model and every advisor-scaled view of the graph.
type InferencePlan struct {
	rels   []relPlan
	maxRun int
}

// planBox lazily caches a graph's InferencePlan. It is shared by pointer
// across shallow Graph-header copies, so the plan is computed once per
// encoded graph no matter how many advisors re-scale it.
type planBox struct {
	mu   sync.Mutex
	plan atomic.Pointer[InferencePlan]
}

// plan returns the graph's InferencePlan, building and caching it on first
// use. Graphs without a plan cache (hand-built, no InitPlanCache) get a
// fresh plan per call — correct, just not allocation-free.
func (g *Graph) plan() *InferencePlan {
	b := g.planBox
	if b == nil {
		return buildPlan(g)
	}
	if p := b.plan.Load(); p != nil {
		return p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.plan.Load(); p != nil {
		return p
	}
	p := buildPlan(g)
	b.plan.Store(p)
	return p
}

// buildPlan groups each relation's edges by destination with a stable
// counting sort. Stability matters for exactness: within one destination the
// edges keep their original order, so softmax sums and scatter-adds
// accumulate in the same sequence as the tape ops.
func buildPlan(g *Graph) *InferencePlan {
	p := &InferencePlan{rels: make([]relPlan, len(g.Rels))}
	for r := range g.Rels {
		rel := &g.Rels[r]
		e := len(rel.Src)
		if e == 0 {
			continue
		}
		rp := &p.rels[r]
		start := make([]int, g.NumNodes+1)
		for _, d := range rel.Dst {
			start[d+1]++
		}
		runs := 0
		for d := 0; d < g.NumNodes; d++ {
			if start[d+1] > 0 {
				runs++
				if start[d+1] > p.maxRun {
					p.maxRun = start[d+1]
				}
			}
			start[d+1] += start[d]
		}
		rp.src = make([]int, e)
		rp.logW = make([]float64, e)
		next := make([]int, g.NumNodes)
		copy(next, start[:g.NumNodes])
		for i, d := range rel.Dst {
			slot := next[d]
			next[d]++
			rp.src[slot] = rel.Src[i]
			rp.logW[slot] = rel.LogW[i]
		}
		rp.runStart = make([]int, 0, runs+1)
		rp.runDst = make([]int, 0, runs)
		for d := 0; d < g.NumNodes; d++ {
			if start[d+1] > start[d] {
				rp.runStart = append(rp.runStart, start[d])
				rp.runDst = append(rp.runDst, d)
			}
		}
		rp.runStart = append(rp.runStart, e)
		// Incident nodes: the only rows of q/srcScore/dstScore the relation
		// ever reads. Most ParaGraph relations touch a small fraction of the
		// graph, so restricting the per-relation projections to this list
		// (exact — rows are computed independently) cuts the dominant
		// N·H² matmul cost to incident·H².
		seen := make([]bool, g.NumNodes)
		for _, s := range rel.Src {
			seen[s] = true
		}
		for _, d := range rel.Dst {
			seen[d] = true
		}
		for i, ok := range seen {
			if ok {
				rp.incident = append(rp.incident, i)
			}
		}
	}
	return p
}

// inferWorkspace holds every scratch buffer one engine forward pass needs.
// Matrices are stored by value (headers owned here, data owned by the
// arena), so re-running a pass over a same-shaped graph touches no
// allocator at all. Workspaces are pooled per Model and used by one
// goroutine at a time.
type inferWorkspace struct {
	arena tensor.Arena

	h        tensor.Matrix // N×H node embeddings (layer input)
	layerOut tensor.Matrix // N×H convolution accumulator
	q        tensor.Matrix // N×H per-relation projected features
	scatter  tensor.Matrix // N×H per-relation aggregated messages
	srcScore tensor.Matrix // N×1 source attention scores
	dstScore tensor.Matrix // N×1 destination attention scores
	logits   []float64     // longest-run softmax scratch

	pooled  tensor.Matrix // 1×H mean-pooled graph embedding
	emb     tensor.Matrix // 1×H fc1 output
	emb2    tensor.Matrix // 1×H fc2 output
	featIn  tensor.Matrix // 1×2 (teams, threads) input row
	featEmb tensor.Matrix // 1×F feature-branch embedding
	concat  tensor.Matrix // 1×(H+F) head input
	outBuf  tensor.Matrix // 1×1 prediction
}

// acquireWS takes a pooled workspace (allocating the empty shell only the
// first few times under concurrency).
func (m *Model) acquireWS() *inferWorkspace {
	return m.wsPool.Get().(*inferWorkspace)
}

func (m *Model) releaseWS(ws *inferWorkspace) { m.wsPool.Put(ws) }

// inferForward runs one engine forward pass: fused node-feature assembly,
// the fused RGAT convolutions, mean pooling, and the two-branch head. It
// mirrors Model.Forward (the tape path) operation for operation.
func (m *Model) inferForward(ws *inferWorkspace, s *Sample) float64 {
	g := s.G
	p := g.plan()
	n, hdim := g.NumNodes, m.cfg.Hidden
	ar := &ws.arena

	// Node features: kind embedding + sub-kind embedding + scalar feature
	// projected through featVec, fused into one pass over the rows. The
	// f != 0 guard mirrors the tape's MatMul skip-zero fast path so signed
	// zeros cannot drift.
	ar.GetMatrix(&ws.h, n, hdim)
	kt, st := m.kindEmb.Table.Value, m.subEmb.Table.Value
	fv := m.featVec.Value.Row(0)
	for i := 0; i < n; i++ {
		krow := kt.Row(g.Kinds[i])
		srow := st.Row(g.SubKinds[i])
		hrow := ws.h.Row(i)
		f := g.Feats.Data[i]
		if f != 0 {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j] + f*fv[j]
			}
		} else {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j]
			}
		}
	}

	ws.logits = ar.GetSlice(ws.logits, p.maxRun)
	for _, l := range m.layers {
		l.infer(ws, p, g)
		// h = ReLU(layerOut); alpha 0 keeps the tape's signed zeros.
		tensor.LeakyReLUInto(&ws.layerOut, 0, &ws.h)
	}

	tensor.MeanRowsInto(&ws.h, &ws.pooled)
	tensor.MatMulInto(&ws.pooled, m.fc1.W.Value, &ws.emb)
	tensor.AddBiasInto(&ws.emb, m.fc1.B.Value, &ws.emb)
	tensor.LeakyReLUInto(&ws.emb, 0, &ws.emb)
	tensor.MatMulInto(&ws.emb, m.fc2.W.Value, &ws.emb2)
	tensor.AddBiasInto(&ws.emb2, m.fc2.B.Value, &ws.emb2)
	tensor.LeakyReLUInto(&ws.emb2, 0, &ws.emb2)

	ar.GetMatrix(&ws.featIn, 1, 2)
	ws.featIn.Data[0], ws.featIn.Data[1] = s.Feats[0], s.Feats[1]
	tensor.MatMulInto(&ws.featIn, m.featFC.W.Value, &ws.featEmb)
	tensor.AddBiasInto(&ws.featEmb, m.featFC.B.Value, &ws.featEmb)
	tensor.LeakyReLUInto(&ws.featEmb, 0, &ws.featEmb)

	hc, fc := ws.emb2.Cols, ws.featEmb.Cols
	ar.GetMatrix(&ws.concat, 1, hc+fc)
	copy(ws.concat.Data[:hc], ws.emb2.Data)
	copy(ws.concat.Data[hc:], ws.featEmb.Data)
	tensor.MatMulInto(&ws.concat, m.out.W.Value, &ws.outBuf)
	tensor.AddBiasInto(&ws.outBuf, m.out.B.Value, &ws.outBuf)
	return ws.outBuf.Data[0]
}

// infer is the fused engine counterpart of rgatLayer.apply: per relation,
// the gather of projected rows, attention logits, LeakyReLU, segment
// softmax, static-weight scaling and scatter-add all execute as one loop
// nest over the plan's destination-grouped runs. Messages accumulate into a
// zeroed scatter buffer in the same per-destination order as the tape's
// ScatterAddRows, then fold into the layer output with one element-wise
// add — the exact association the tape's final Add performs.
func (l *rgatLayer) infer(ws *inferWorkspace, p *InferencePlan, g *Graph) {
	tensor.MatMulInto(&ws.h, l.self.Value, &ws.layerOut)
	tensor.AddBiasInto(&ws.layerOut, l.bias.Value, &ws.layerOut)
	wscale := g.WScale
	if wscale <= 0 {
		wscale = 1
	}
	n, hdim := ws.h.Rows, ws.h.Cols
	for r := range g.Rels {
		if r >= len(l.w) {
			break
		}
		rp := &p.rels[r]
		if len(rp.src) == 0 {
			continue
		}
		// Project only the relation's incident rows: q[i] = h[i]×W_r and the
		// two attention scores, with the same skip-zero accumulation order as
		// tensor.MatMul, so each computed row is bit-identical to the full
		// product. Non-incident rows hold stale values that nothing reads.
		ws.arena.GetMatrix(&ws.q, n, hdim)
		ws.arena.GetMatrix(&ws.srcScore, n, 1)
		ws.arena.GetMatrix(&ws.dstScore, n, 1)
		wv := l.w[r].Value
		asrc, adst := l.aSrc[r].Value.Data, l.aDst[r].Value.Data
		for _, i := range rp.incident {
			hrow := ws.h.Row(i)
			qrow := ws.q.Row(i)
			for j := range qrow {
				qrow[j] = 0
			}
			for k, av := range hrow {
				if av == 0 {
					continue
				}
				wrow := wv.Row(k)
				for j, bv := range wrow {
					qrow[j] += av * bv
				}
			}
			var ss, ds float64
			for k, av := range qrow {
				if av == 0 {
					continue
				}
				ss += av * asrc[k]
				ds += av * adst[k]
			}
			ws.srcScore.Data[i] = ss
			ws.dstScore.Data[i] = ds
		}
		ws.arena.GetMatrix(&ws.scatter, n, hdim)
		ws.scatter.Zero()
		c := l.wCoef[r].Value.Data[0]
		for t := 0; t+1 < len(rp.runStart); t++ {
			lo, hi := rp.runStart[t], rp.runStart[t+1]
			d := rp.runDst[t]
			ds := ws.dstScore.Data[d]
			run := ws.logits[:hi-lo]
			mx := math.Inf(-1)
			for i := lo; i < hi; i++ {
				v := ws.srcScore.Data[rp.src[i]] + ds
				if v < 0 {
					v = l.alpha * v
				}
				run[i-lo] = v
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for i, v := range run {
				e := math.Exp(v - mx)
				run[i] = e
				sum += e
			}
			drow := ws.scatter.Row(d)
			for i := lo; i < hi; i++ {
				a := run[i-lo]
				if sum > 0 {
					a /= sum
				}
				// Static edge weights scale the message through the learned
				// per-relation coefficient: (α·q)·(1 + c_r·w̃). The wt != 0
				// guard and the two separate multiplies reproduce the tape's
				// skip-zero MatMul and its two MulColBroadcast passes.
				scale := 1.0
				if !l.noWeights {
					if wt := rp.logW[i] / wscale; wt != 0 {
						scale = wt*c + 1
					}
				}
				qrow := ws.q.Row(rp.src[i])
				for j, qv := range qrow {
					msg := qv * a
					msg *= scale
					drow[j] += msg
				}
			}
		}
		ws.layerOut.AddInPlace(&ws.scatter)
	}
}
