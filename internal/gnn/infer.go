package gnn

import (
	"math"
	"sync"
	"sync/atomic"

	"paragraph/internal/tensor"
)

// This file is the inference engine: the allocation-free forward pass behind
// Predict/PredictBatch. The autodiff tape (Forward) remains the training
// path and the reference semantics; the engine reproduces its arithmetic up
// to float reassociation — the kernels below reassociate sums (tiled
// matmuls, precomputed attention projections, fused softmax scaling) to run
// near the FLOP limit, so predictions agree with the tape to a relaxed
// tolerance (TestInferEngineMatchesTape enforces ≤ 1e-9; the float32
// weights path is gated at ≤ 1e-4) instead of bit for bit.
//
// Three precomputed structures make the hot path cheap:
//
//   - InferencePlan: per encoded Graph, derived once and cached in the graph
//     (and therefore in the serving tier's encode cache). It re-orders each
//     relation's edge list CSR-style — grouped by destination node — and
//     additionally derives the relation's unique-source list: the only rows
//     whose W_r projection the relation ever reads. Most ParaGraph
//     relations touch a small fraction of the graph, so projecting source
//     rows only cuts the dominant N·H² matmul cost to |sources|·H².
//
//   - inferModel (model.go): weight-derived constants computed once at
//     checkpoint-load time, not per forward — the per-relation attention
//     projections p_src = W_r·aSrc and p_dst = W_r·aDst (so attention
//     scores become one H-dot per node instead of an H²-projection), and,
//     when float32 inference is enabled, the converted float32 weight set.
//
//   - inferWorkspace: the scratch matrices of one forward pass, sized from
//     the model Config and graph shape, backed by tensor arenas and pooled
//     on the Model via sync.Pool. In steady state a forward pass performs
//     zero heap allocations (asserted by TestInferForwardZeroAllocs).
//
// The matmuls dispatch between the register-blocked tiled kernel and the
// skip-zero row kernel on the measured density of the layer input: ReLU
// zeroes roughly half of each hidden layer's activations, and below
// denseCutoff the skipped inner loops beat the tiled kernel's blocking.

// relPlan is one relation's edges re-ordered by destination node.
type relPlan struct {
	logW       []float64 // raw log1p edge weight per edge, destination-grouped
	edgeSrcIdx []int     // per edge: index of its source node in srcList
	runStart   []int     // len(runs)+1 offsets into logW/edgeSrcIdx
	runDst     []int     // destination node of each run
	srcList    []int     // unique source nodes, ascending
}

// InferencePlan is the per-graph constant structure of the fused RGAT path:
// destination-grouped edge lists and unique-source lists for every relation
// plus the longest attention segment (which sizes the softmax scratch
// buffer). It depends only on the graph topology — not on WScale or any
// model parameter — so one plan serves every model and every
// advisor-scaled view of the graph.
type InferencePlan struct {
	rels   []relPlan
	maxRun int
}

// planBox lazily caches a graph's InferencePlan. It is shared by pointer
// across shallow Graph-header copies, so the plan is computed once per
// encoded graph no matter how many advisors re-scale it.
type planBox struct {
	mu   sync.Mutex
	plan atomic.Pointer[InferencePlan]
}

// plan returns the graph's InferencePlan, building and caching it on first
// use. Graphs without a plan cache (hand-built, no InitPlanCache) get a
// fresh plan per call — correct, just not allocation-free.
func (g *Graph) plan() *InferencePlan {
	b := g.planBox
	if b == nil {
		return buildPlan(g)
	}
	if p := b.plan.Load(); p != nil {
		return p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.plan.Load(); p != nil {
		return p
	}
	p := buildPlan(g)
	b.plan.Store(p)
	return p
}

// buildPlan groups each relation's edges by destination with a stable
// counting sort. Stability keeps softmax sums and message scatter-adds
// accumulating in the tape ops' edge order within each destination.
func buildPlan(g *Graph) *InferencePlan {
	p := &InferencePlan{rels: make([]relPlan, len(g.Rels))}
	for r := range g.Rels {
		rel := &g.Rels[r]
		e := len(rel.Src)
		if e == 0 {
			continue
		}
		rp := &p.rels[r]
		start := make([]int, g.NumNodes+1)
		for _, d := range rel.Dst {
			start[d+1]++
		}
		runs := 0
		for d := 0; d < g.NumNodes; d++ {
			if start[d+1] > 0 {
				runs++
				if start[d+1] > p.maxRun {
					p.maxRun = start[d+1]
				}
			}
			start[d+1] += start[d]
		}
		// Unique sources, ascending, and each node's slot in that list: the
		// relation's q-projection runs over srcList rows only, and each edge
		// addresses its source's projected row through edgeSrcIdx.
		seen := make([]bool, g.NumNodes)
		for _, s := range rel.Src {
			seen[s] = true
		}
		idxOf := make([]int, g.NumNodes)
		for i, ok := range seen {
			if ok {
				idxOf[i] = len(rp.srcList)
				rp.srcList = append(rp.srcList, i)
			}
		}
		rp.edgeSrcIdx = make([]int, e)
		rp.logW = make([]float64, e)
		next := make([]int, g.NumNodes)
		copy(next, start[:g.NumNodes])
		for i, d := range rel.Dst {
			slot := next[d]
			next[d]++
			rp.edgeSrcIdx[slot] = idxOf[rel.Src[i]]
			rp.logW[slot] = rel.LogW[i]
		}
		rp.runStart = make([]int, 0, runs+1)
		rp.runDst = make([]int, 0, runs)
		for d := 0; d < g.NumNodes; d++ {
			if start[d+1] > start[d] {
				rp.runStart = append(rp.runStart, start[d])
				rp.runDst = append(rp.runDst, d)
			}
		}
		rp.runStart = append(rp.runStart, e)
	}
	return p
}

// denseCutoff is the zero fraction above which a layer input routes its
// matmuls through the skip-zero kernel instead of the tiled one. On paper:
// at zero fraction z the skip kernel does (1-z) of the naive work while the
// tiled kernel runs at ~0.75× naive, suggesting a crossover near z = 0.25.
// Measured, the crossover is far higher: ReLU zeros land in unpredictable
// positions, so the skip branch mispredicts on roughly min(z, 1-z) of
// elements, and the skip kernel's load-add-store inner loop retires far
// fewer FLOPs per cycle than the register-blocked one. Typical ParaGraph
// activations (z ≈ 0.5) run faster fully tiled; only strongly sparse
// inputs pay their way through the skip kernel.
const denseCutoff = 0.7

// reluIntoDensity computes dst = max(src, 0) element-wise (dst is reshaped
// to src's shape via the arena) and reports whether the result is dense
// enough that the next layer's matmuls should stay on the tiled kernel.
// Both the rectification and the zero count are branchless — the input's
// sign pattern is effectively random, so a compare-and-branch here would
// mispredict on half the elements.
func reluIntoDensity(ar *tensor.Arena, src, dst *tensor.Matrix) bool {
	ar.GetMatrix(dst, src.Rows, src.Cols)
	neg := 0
	for i, v := range src.Data {
		neg += int(math.Float64bits(v) >> 63)
		dst.Data[i] = max(v, 0)
	}
	return float64(neg) < denseCutoff*float64(len(src.Data))
}

// inferWorkspace holds every scratch buffer one engine forward pass needs,
// for both element widths (only the width the model serves is ever grown).
// Matrices are stored by value (headers owned here, data owned by the
// arenas), so re-running a pass over a same-shaped graph touches no
// allocator at all. Workspaces are pooled per Model and used by one
// goroutine at a time.
type inferWorkspace struct {
	arena tensor.Arena

	h        tensor.Matrix // N×H node embeddings (layer input)
	layerOut tensor.Matrix // N×H convolution accumulator
	hs       tensor.Matrix // S×H gathered source rows
	qc       tensor.Matrix // S×H projected source rows
	srcScore []float64     // S source attention scores
	logits   []float64     // longest-run softmax scratch

	pooled  tensor.Matrix // 1×H mean-pooled graph embedding
	emb     tensor.Matrix // 1×H fc1 output
	emb2    tensor.Matrix // 1×H fc2 output
	featIn  tensor.Matrix // 1×2 (teams, threads) input row
	featEmb tensor.Matrix // 1×F feature-branch embedding
	concat  tensor.Matrix // 1×(H+F) head input
	outBuf  tensor.Matrix // 1×1 prediction

	// Float32 twins (see infer32.go), used when the model serves the
	// float32 inference-weights path.
	arena32    tensor.Arena32
	h32        tensor.Matrix32
	layerOut32 tensor.Matrix32
	hs32       tensor.Matrix32
	qc32       tensor.Matrix32
	srcScore32 []float32
	pooled32   tensor.Matrix32
	emb32      tensor.Matrix32
	emb232     tensor.Matrix32
	featIn32   tensor.Matrix32
	featEmb32  tensor.Matrix32
	concat32   tensor.Matrix32
	outBuf32   tensor.Matrix32
}

// acquireWS takes a pooled workspace (allocating the empty shell only the
// first few times under concurrency).
func (m *Model) acquireWS() *inferWorkspace {
	return m.wsPool.Get().(*inferWorkspace)
}

func (m *Model) releaseWS(ws *inferWorkspace) { m.wsPool.Put(ws) }

// inferForward runs one engine forward pass: fused node-feature assembly,
// the fused RGAT convolutions, mean pooling, and the two-branch head. It
// mirrors Model.Forward (the tape path) up to float reassociation,
// dispatching to the float32 engine when the model serves converted
// inference weights.
func (m *Model) inferForward(ws *inferWorkspace, s *Sample) float64 {
	ip := m.inferParams()
	if ip.f32 != nil {
		return m.inferForward32(ws, s, ip.f32)
	}
	g := s.G
	p := g.plan()
	n, hdim := g.NumNodes, m.cfg.Hidden
	ar := &ws.arena

	// Node features: kind embedding + sub-kind embedding + scalar feature
	// projected through featVec, fused into one pass over the rows.
	ar.GetMatrix(&ws.h, n, hdim)
	kt, st := m.kindEmb.Table.Value, m.subEmb.Table.Value
	fv := m.featVec.Value.Row(0)
	for i := 0; i < n; i++ {
		krow := kt.Row(g.Kinds[i])
		srow := st.Row(g.SubKinds[i])
		hrow := ws.h.Row(i)
		f := g.Feats.Data[i]
		if f != 0 {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j] + f*fv[j]
			}
		} else {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j]
			}
		}
	}

	ws.logits = ar.GetSlice(ws.logits, p.maxRun)
	dense := true // the embedding sum is dense; ReLU sparsifies later layers
	for li, l := range m.layers {
		l.infer(ws, p, g, &ip.layers[li], dense)
		// h = ReLU(layerOut), measuring density for the next layer's kernels.
		dense = reluIntoDensity(ar, &ws.layerOut, &ws.h)
	}

	tensor.MeanRowsInto(&ws.h, &ws.pooled)
	tensor.MatMulInto(&ws.pooled, m.fc1.W.Value, &ws.emb)
	tensor.AddBiasInto(&ws.emb, m.fc1.B.Value, &ws.emb)
	tensor.LeakyReLUInto(&ws.emb, 0, &ws.emb)
	tensor.MatMulInto(&ws.emb, m.fc2.W.Value, &ws.emb2)
	tensor.AddBiasInto(&ws.emb2, m.fc2.B.Value, &ws.emb2)
	tensor.LeakyReLUInto(&ws.emb2, 0, &ws.emb2)

	ar.GetMatrix(&ws.featIn, 1, 2)
	ws.featIn.Data[0], ws.featIn.Data[1] = s.Feats[0], s.Feats[1]
	tensor.MatMulInto(&ws.featIn, m.featFC.W.Value, &ws.featEmb)
	tensor.AddBiasInto(&ws.featEmb, m.featFC.B.Value, &ws.featEmb)
	tensor.LeakyReLUInto(&ws.featEmb, 0, &ws.featEmb)

	hc, fc := ws.emb2.Cols, ws.featEmb.Cols
	ar.GetMatrix(&ws.concat, 1, hc+fc)
	copy(ws.concat.Data[:hc], ws.emb2.Data)
	copy(ws.concat.Data[hc:], ws.featEmb.Data)
	tensor.MatMulInto(&ws.concat, m.out.W.Value, &ws.outBuf)
	tensor.AddBiasInto(&ws.outBuf, m.out.B.Value, &ws.outBuf)
	return ws.outBuf.Data[0]
}

// infer is the fused engine counterpart of rgatLayer.apply: per relation it
// gathers the unique source rows, projects them through W_r with one tiled
// (or skip-zero, when the layer input is ReLU-sparse) matmul, reads the
// attention scores off the precomputed projections p_src/p_dst — one H-dot
// per node instead of re-projecting through W_r — and runs LeakyReLU,
// segment softmax, static-weight scaling and message aggregation as one
// loop nest over the plan's destination-grouped runs, accumulating straight
// into the layer output.
func (l *rgatLayer) infer(ws *inferWorkspace, p *InferencePlan, g *Graph, ex *inferLayerExtras, dense bool) {
	if dense {
		tensor.MatMulInto(&ws.h, l.self.Value, &ws.layerOut)
	} else {
		tensor.MatMulSparseInto(&ws.h, l.self.Value, &ws.layerOut)
	}
	tensor.AddBiasInto(&ws.layerOut, l.bias.Value, &ws.layerOut)
	wscale := g.WScale
	if wscale <= 0 {
		wscale = 1
	}
	hdim := ws.h.Cols
	for r := range g.Rels {
		if r >= len(l.w) {
			break
		}
		rp := &p.rels[r]
		if len(rp.edgeSrcIdx) == 0 {
			continue
		}
		// Gather the relation's unique source rows and project them through
		// W_r: qc[si] = h[srcList[si]]×W_r. Only these rows are ever read as
		// messages, so the projection cost scales with the relation's source
		// set, not the graph.
		sn := len(rp.srcList)
		ws.arena.GetMatrix(&ws.hs, sn, hdim)
		for si, node := range rp.srcList {
			copy(ws.hs.Row(si), ws.h.Row(node))
		}
		if dense {
			tensor.MatMulInto(&ws.hs, l.w[r].Value, &ws.qc)
		} else {
			tensor.MatMulSparseInto(&ws.hs, l.w[r].Value, &ws.qc)
		}
		// Attention scores off the precomputed projections: one dot with
		// p_src per source row; destination scores are one dot with p_dst
		// per run, computed inline (each destination owns exactly one run).
		ws.srcScore = ws.arena.GetSlice(ws.srcScore, sn)
		pSrc, pDst := ex.pSrc[r], ex.pDst[r]
		for si := 0; si < sn; si++ {
			ws.srcScore[si] = tensor.Dot(ws.hs.Row(si), pSrc)
		}
		c := l.wCoef[r].Value.Data[0]
		for t := 0; t+1 < len(rp.runStart); t++ {
			lo, hi := rp.runStart[t], rp.runStart[t+1]
			d := rp.runDst[t]
			ds := tensor.Dot(ws.h.Row(d), pDst)
			run := ws.logits[:hi-lo]
			mx := math.Inf(-1)
			for i := lo; i < hi; i++ {
				v := ws.srcScore[rp.edgeSrcIdx[i]] + ds
				if v < 0 {
					v = l.alpha * v
				}
				run[i-lo] = v
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for i, v := range run {
				e := math.Exp(v - mx)
				run[i] = e
				sum += e
			}
			// Segments whose sum underflows to zero stay unnormalized,
			// exactly as the tape's SegmentSoftmax leaves them.
			inv := 1.0
			if sum > 0 {
				inv = 1 / sum
			}
			drow := ws.layerOut.Row(d)
			for i := lo; i < hi; i++ {
				// Static edge weights scale the message through the learned
				// per-relation coefficient: (α·q)·(1 + c_r·w̃), folded into
				// one per-edge factor.
				f := run[i-lo] * inv
				if !l.noWeights {
					if wt := rp.logW[i] / wscale; wt != 0 {
						f *= wt*c + 1
					}
				}
				qrow := ws.qc.Row(rp.edgeSrcIdx[i])
				for j, qv := range qrow {
					drow[j] += qv * f
				}
			}
		}
	}
}
