package gnn

import (
	"math"

	"paragraph/internal/tensor"
)

// This file is the float32 mirror of the engine forward pass (infer.go):
// the same fused node assembly, RGAT loop nest, and head, run over the
// converted float32 weight set (inferparams.go) and the workspace's float32
// twins. Halving the element width halves the memory traffic of every
// matmul on the hot path. Softmax exponentials still go through float64
// math.Exp (there is no float32 exp in the standard library); everything
// else stays float32. TestInferEngine32MatchesTape gates the path at ≤1e-4
// relative error against the float64 tape.

// reluIntoDensity32 is the float32 twin of reluIntoDensity (branchless, see
// the float64 version).
func reluIntoDensity32(ar *tensor.Arena32, src, dst *tensor.Matrix32) bool {
	ar.GetMatrix(dst, src.Rows, src.Cols)
	neg := 0
	for i, v := range src.Data {
		neg += int(math.Float32bits(v) >> 31)
		dst.Data[i] = max(v, 0)
	}
	return float64(neg) < denseCutoff*float64(len(src.Data))
}

// inferForward32 runs one engine forward pass in float32. The prediction is
// widened back to float64 at the very end.
func (m *Model) inferForward32(ws *inferWorkspace, s *Sample, w *weights32) float64 {
	g := s.G
	p := g.plan()
	n, hdim := g.NumNodes, m.cfg.Hidden
	ar := &ws.arena32

	ar.GetMatrix(&ws.h32, n, hdim)
	fv := w.featVec
	for i := 0; i < n; i++ {
		krow := w.kindTab.Row(g.Kinds[i])
		srow := w.subTab.Row(g.SubKinds[i])
		hrow := ws.h32.Row(i)
		f := float32(g.Feats.Data[i])
		if f != 0 {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j] + f*fv[j]
			}
		} else {
			for j := range hrow {
				hrow[j] = krow[j] + srow[j]
			}
		}
	}

	// The softmax scratch stays the workspace's float64 logits buffer:
	// exponentials run through math.Exp either way.
	ws.logits = ws.arena.GetSlice(ws.logits, p.maxRun)
	dense := true
	for li := range w.layers {
		inferLayer32(ws, p, g, &w.layers[li], w.noWeights, dense)
		dense = reluIntoDensity32(ar, &ws.layerOut32, &ws.h32)
	}

	tensor.MeanRowsInto32(&ws.h32, &ws.pooled32)
	tensor.MatMulInto32(&ws.pooled32, w.fc1W, &ws.emb32)
	tensor.AddBiasInto32(&ws.emb32, w.fc1B, &ws.emb32)
	tensor.LeakyReLUInto32(&ws.emb32, 0, &ws.emb32)
	tensor.MatMulInto32(&ws.emb32, w.fc2W, &ws.emb232)
	tensor.AddBiasInto32(&ws.emb232, w.fc2B, &ws.emb232)
	tensor.LeakyReLUInto32(&ws.emb232, 0, &ws.emb232)

	ar.GetMatrix(&ws.featIn32, 1, 2)
	ws.featIn32.Data[0], ws.featIn32.Data[1] = float32(s.Feats[0]), float32(s.Feats[1])
	tensor.MatMulInto32(&ws.featIn32, w.featW, &ws.featEmb32)
	tensor.AddBiasInto32(&ws.featEmb32, w.featB, &ws.featEmb32)
	tensor.LeakyReLUInto32(&ws.featEmb32, 0, &ws.featEmb32)

	hc, fc := ws.emb232.Cols, ws.featEmb32.Cols
	ar.GetMatrix(&ws.concat32, 1, hc+fc)
	copy(ws.concat32.Data[:hc], ws.emb232.Data)
	copy(ws.concat32.Data[hc:], ws.featEmb32.Data)
	tensor.MatMulInto32(&ws.concat32, w.outW, &ws.outBuf32)
	tensor.AddBiasInto32(&ws.outBuf32, w.outB, &ws.outBuf32)
	return float64(ws.outBuf32.Data[0])
}

// inferLayer32 is the float32 twin of rgatLayer.infer, reading every weight
// from the converted layer32 set. The run softmax borrows the workspace's
// float64 logits buffer: exponentials are computed through math.Exp and the
// normalized factors rounded back to float32 per edge.
func inferLayer32(ws *inferWorkspace, p *InferencePlan, g *Graph, l *layer32, noWeights, dense bool) {
	if dense {
		tensor.MatMulInto32(&ws.h32, l.self, &ws.layerOut32)
	} else {
		tensor.MatMulSparseInto32(&ws.h32, l.self, &ws.layerOut32)
	}
	tensor.AddBiasInto32(&ws.layerOut32, l.bias, &ws.layerOut32)
	wscale := g.WScale
	if wscale <= 0 {
		wscale = 1
	}
	hdim := ws.h32.Cols
	for r := range g.Rels {
		if r >= len(l.w) {
			break
		}
		rp := &p.rels[r]
		if len(rp.edgeSrcIdx) == 0 {
			continue
		}
		sn := len(rp.srcList)
		ws.arena32.GetMatrix(&ws.hs32, sn, hdim)
		for si, node := range rp.srcList {
			copy(ws.hs32.Row(si), ws.h32.Row(node))
		}
		if dense {
			tensor.MatMulInto32(&ws.hs32, l.w[r], &ws.qc32)
		} else {
			tensor.MatMulSparseInto32(&ws.hs32, l.w[r], &ws.qc32)
		}
		ws.srcScore32 = ws.arena32.GetSlice(ws.srcScore32, sn)
		pSrc, pDst := l.pSrc[r], l.pDst[r]
		for si := 0; si < sn; si++ {
			ws.srcScore32[si] = tensor.Dot(ws.hs32.Row(si), pSrc)
		}
		c := l.wCoef[r]
		for t := 0; t+1 < len(rp.runStart); t++ {
			lo, hi := rp.runStart[t], rp.runStart[t+1]
			d := rp.runDst[t]
			ds := tensor.Dot(ws.h32.Row(d), pDst)
			run := ws.logits[:hi-lo]
			mx := float32(math.Inf(-1))
			for i := lo; i < hi; i++ {
				v := ws.srcScore32[rp.edgeSrcIdx[i]] + ds
				if v < 0 {
					v = l.alpha * v
				}
				run[i-lo] = float64(v)
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for i, v := range run {
				e := math.Exp(v - float64(mx))
				run[i] = e
				sum += e
			}
			inv := 1.0
			if sum > 0 {
				inv = 1 / sum
			}
			drow := ws.layerOut32.Row(d)
			for i := lo; i < hi; i++ {
				f := float32(run[i-lo] * inv)
				if !noWeights {
					if wt := float32(rp.logW[i] / wscale); wt != 0 {
						f *= wt*c + 1
					}
				}
				qrow := ws.qc32.Row(rp.edgeSrcIdx[i])
				for j, qv := range qrow {
					drow[j] += qv * f
				}
			}
		}
	}
}
