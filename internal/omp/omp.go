// Package omp models OpenMP directives and clauses for the C subset used by
// the ParaGraph benchmarks. It parses "#pragma omp ..." lines into a typed
// Directive structure that the AST and variant-generation layers consume.
package omp

import (
	"fmt"
	"strconv"
	"strings"
)

// DirectiveKind identifies an OpenMP executable directive. The set covers
// the combined constructs used by the paper's six kernel variants plus the
// building blocks they compose from.
type DirectiveKind int

// Directive kinds.
const (
	DirUnknown DirectiveKind = iota
	DirParallel
	DirFor
	DirParallelFor
	DirSIMD
	DirTarget
	DirTargetData
	DirTargetEnterData
	DirTargetExitData
	DirTeams
	DirDistribute
	DirTeamsDistribute
	DirDistributeParallelFor
	DirTargetTeams
	DirTargetTeamsDistribute
	DirTargetTeamsDistributeParallelFor
	DirBarrier
	DirCritical
	DirAtomic
	DirSingle
	DirMaster
)

var dirNames = map[DirectiveKind]string{
	DirUnknown:                          "unknown",
	DirParallel:                         "parallel",
	DirFor:                              "for",
	DirParallelFor:                      "parallel for",
	DirSIMD:                             "simd",
	DirTarget:                           "target",
	DirTargetData:                       "target data",
	DirTargetEnterData:                  "target enter data",
	DirTargetExitData:                   "target exit data",
	DirTeams:                            "teams",
	DirDistribute:                       "distribute",
	DirTeamsDistribute:                  "teams distribute",
	DirDistributeParallelFor:            "distribute parallel for",
	DirTargetTeams:                      "target teams",
	DirTargetTeamsDistribute:            "target teams distribute",
	DirTargetTeamsDistributeParallelFor: "target teams distribute parallel for",
	DirBarrier:                          "barrier",
	DirCritical:                         "critical",
	DirAtomic:                           "atomic",
	DirSingle:                           "single",
	DirMaster:                           "master",
}

// String returns the canonical OpenMP spelling of the directive kind.
func (k DirectiveKind) String() string {
	if s, ok := dirNames[k]; ok {
		return s
	}
	return fmt.Sprintf("DirectiveKind(%d)", int(k))
}

// IsTarget reports whether the directive offloads to a device.
func (k DirectiveKind) IsTarget() bool {
	switch k {
	case DirTarget, DirTargetData, DirTargetEnterData, DirTargetExitData,
		DirTargetTeams, DirTargetTeamsDistribute, DirTargetTeamsDistributeParallelFor:
		return true
	}
	return false
}

// IsLoopAssociated reports whether the directive binds to a following loop.
func (k DirectiveKind) IsLoopAssociated() bool {
	switch k {
	case DirFor, DirParallelFor, DirSIMD, DirDistribute, DirTeamsDistribute,
		DirDistributeParallelFor, DirTargetTeamsDistribute,
		DirTargetTeamsDistributeParallelFor:
		return true
	}
	return false
}

// ClauseKind identifies an OpenMP clause.
type ClauseKind int

// Clause kinds.
const (
	ClauseUnknown ClauseKind = iota
	ClauseCollapse
	ClauseNumTeams
	ClauseNumThreads
	ClauseThreadLimit
	ClauseMap
	ClauseReduction
	ClausePrivate
	ClauseFirstPrivate
	ClauseLastPrivate
	ClauseShared
	ClauseSchedule
	ClauseDefault
	ClauseNowait
	ClauseIf
	ClauseDevice
	ClauseSIMDLen
)

var clauseNames = map[ClauseKind]string{
	ClauseUnknown:      "unknown",
	ClauseCollapse:     "collapse",
	ClauseNumTeams:     "num_teams",
	ClauseNumThreads:   "num_threads",
	ClauseThreadLimit:  "thread_limit",
	ClauseMap:          "map",
	ClauseReduction:    "reduction",
	ClausePrivate:      "private",
	ClauseFirstPrivate: "firstprivate",
	ClauseLastPrivate:  "lastprivate",
	ClauseShared:       "shared",
	ClauseSchedule:     "schedule",
	ClauseDefault:      "default",
	ClauseNowait:       "nowait",
	ClauseIf:           "if",
	ClauseDevice:       "device",
	ClauseSIMDLen:      "simdlen",
}

var clauseByName = func() map[string]ClauseKind {
	m := make(map[string]ClauseKind, len(clauseNames))
	for k, n := range clauseNames {
		m[n] = k
	}
	return m
}()

// String returns the OpenMP spelling of the clause kind.
func (k ClauseKind) String() string {
	if s, ok := clauseNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ClauseKind(%d)", int(k))
}

// MapType is the map clause direction (to / from / tofrom / alloc).
type MapType int

// Map clause directions.
const (
	MapToFrom MapType = iota // default when no type is given
	MapTo
	MapFrom
	MapAlloc
)

// String returns the OpenMP spelling of the map direction.
func (m MapType) String() string {
	switch m {
	case MapTo:
		return "to"
	case MapFrom:
		return "from"
	case MapAlloc:
		return "alloc"
	default:
		return "tofrom"
	}
}

// Clause is one parsed clause. Args carries the raw comma-separated
// arguments (variable names or array sections); IntArg carries the parsed
// integer for collapse/num_teams/num_threads/thread_limit/simdlen when the
// argument is a literal, else 0. For map clauses MapDir holds the direction;
// for reduction clauses Reducer holds the operator.
type Clause struct {
	Kind    ClauseKind
	Args    []string
	IntArg  int
	MapDir  MapType
	Reducer string
}

// String renders the clause in OpenMP syntax.
func (c Clause) String() string {
	switch c.Kind {
	case ClauseNowait:
		return "nowait"
	case ClauseMap:
		return fmt.Sprintf("map(%s: %s)", c.MapDir, strings.Join(c.Args, ", "))
	case ClauseReduction:
		return fmt.Sprintf("reduction(%s: %s)", c.Reducer, strings.Join(c.Args, ", "))
	default:
		return fmt.Sprintf("%s(%s)", c.Kind, strings.Join(c.Args, ", "))
	}
}

// Directive is a parsed "#pragma omp" line.
type Directive struct {
	Kind    DirectiveKind
	Clauses []Clause
	Raw     string // original pragma text, for diagnostics
}

// String renders the directive in OpenMP syntax.
func (d *Directive) String() string {
	var sb strings.Builder
	sb.WriteString("#pragma omp ")
	sb.WriteString(d.Kind.String())
	for _, c := range d.Clauses {
		sb.WriteByte(' ')
		sb.WriteString(c.String())
	}
	return sb.String()
}

// Clause returns the first clause of the given kind and whether it exists.
func (d *Directive) Clause(kind ClauseKind) (Clause, bool) {
	for _, c := range d.Clauses {
		if c.Kind == kind {
			return c, true
		}
	}
	return Clause{}, false
}

// CollapseDepth returns the collapse(n) value, or 1 when absent (a loop
// directive always binds at least the immediately following loop).
func (d *Directive) CollapseDepth() int {
	if c, ok := d.Clause(ClauseCollapse); ok && c.IntArg >= 1 {
		return c.IntArg
	}
	return 1
}

// NumTeams returns the num_teams(n) literal value, or 0 when absent.
func (d *Directive) NumTeams() int {
	if c, ok := d.Clause(ClauseNumTeams); ok {
		return c.IntArg
	}
	return 0
}

// NumThreads returns the num_threads(n) literal value, or 0 when absent.
func (d *Directive) NumThreads() int {
	if c, ok := d.Clause(ClauseNumThreads); ok {
		return c.IntArg
	}
	return 0
}

// HasDataTransfer reports whether any map clause moves data to or from the
// device (alloc-only maps do not count).
func (d *Directive) HasDataTransfer() bool {
	for _, c := range d.Clauses {
		if c.Kind == ClauseMap && c.MapDir != MapAlloc {
			return true
		}
	}
	return false
}

// directivePhrases maps multi-word directive names to kinds, longest match
// first (order matters: "target teams distribute parallel for" must win over
// "target teams").
var directivePhrases = []struct {
	words []string
	kind  DirectiveKind
}{
	{[]string{"target", "teams", "distribute", "parallel", "for"}, DirTargetTeamsDistributeParallelFor},
	{[]string{"target", "teams", "distribute"}, DirTargetTeamsDistribute},
	{[]string{"distribute", "parallel", "for"}, DirDistributeParallelFor},
	{[]string{"target", "enter", "data"}, DirTargetEnterData},
	{[]string{"target", "exit", "data"}, DirTargetExitData},
	{[]string{"teams", "distribute"}, DirTeamsDistribute},
	{[]string{"target", "teams"}, DirTargetTeams},
	{[]string{"target", "data"}, DirTargetData},
	{[]string{"parallel", "for"}, DirParallelFor},
	{[]string{"parallel"}, DirParallel},
	{[]string{"for"}, DirFor},
	{[]string{"simd"}, DirSIMD},
	{[]string{"target"}, DirTarget},
	{[]string{"teams"}, DirTeams},
	{[]string{"distribute"}, DirDistribute},
	{[]string{"barrier"}, DirBarrier},
	{[]string{"critical"}, DirCritical},
	{[]string{"atomic"}, DirAtomic},
	{[]string{"single"}, DirSingle},
	{[]string{"master"}, DirMaster},
}

// ParsePragma parses a "#pragma omp ..." line (leading '#' optional) into a
// Directive. It returns (nil, nil) for pragmas that are not OpenMP pragmas,
// and an error for malformed OpenMP pragmas.
func ParsePragma(text string) (*Directive, error) {
	raw := text
	s := strings.TrimSpace(text)
	s = strings.TrimPrefix(s, "#")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "pragma") {
		return nil, fmt.Errorf("omp: not a pragma: %q", raw)
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "pragma"))
	if !strings.HasPrefix(s, "omp") {
		return nil, nil // e.g. #pragma once — not ours
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "omp"))

	p := &pragmaParser{input: s}
	words := p.peekWords()
	if len(words) == 0 {
		return nil, fmt.Errorf("omp: empty omp pragma: %q", raw)
	}
	var kind DirectiveKind
	for _, ph := range directivePhrases {
		if hasPrefixWords(words, ph.words) {
			kind = ph.kind
			p.consumeWords(len(ph.words))
			break
		}
	}
	if kind == DirUnknown {
		return nil, fmt.Errorf("omp: unknown directive %q in %q", words[0], raw)
	}
	d := &Directive{Kind: kind, Raw: raw}
	for {
		c, done, err := p.parseClause()
		if err != nil {
			return nil, fmt.Errorf("omp: %v in %q", err, raw)
		}
		if done {
			break
		}
		d.Clauses = append(d.Clauses, c)
	}
	return d, nil
}

func hasPrefixWords(have, want []string) bool {
	if len(have) < len(want) {
		return false
	}
	for i, w := range want {
		if have[i] != w {
			return false
		}
	}
	return true
}

// pragmaParser is a tiny scanner over the clause region of a pragma line.
type pragmaParser struct {
	input string
	pos   int
}

func (p *pragmaParser) skipSpace() {
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c != ' ' && c != '\t' && c != ',' {
			return
		}
		p.pos++
	}
}

// peekWords splits the remaining input into identifier words, stopping at the
// first parenthesis (clause argument).
func (p *pragmaParser) peekWords() []string {
	rest := p.input[p.pos:]
	if i := strings.IndexByte(rest, '('); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest)
}

// consumeWords advances past the first n whitespace-separated words.
func (p *pragmaParser) consumeWords(n int) {
	for ; n > 0; n-- {
		p.skipSpace()
		for p.pos < len(p.input) && p.input[p.pos] != ' ' && p.input[p.pos] != '\t' {
			p.pos++
		}
	}
}

func (p *pragmaParser) parseIdent() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos]
}

// parseParenBody consumes a balanced "(...)" group and returns its interior.
func (p *pragmaParser) parseParenBody() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return "", fmt.Errorf("expected '('")
	}
	depth := 0
	start := p.pos + 1
	for ; p.pos < len(p.input); p.pos++ {
		switch p.input[p.pos] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				body := p.input[start:p.pos]
				p.pos++
				return body, nil
			}
		}
	}
	return "", fmt.Errorf("unbalanced parentheses")
}

// parseClause parses one clause; done is true at end of input.
func (p *pragmaParser) parseClause() (Clause, bool, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return Clause{}, true, nil
	}
	name := p.parseIdent()
	if name == "" {
		return Clause{}, false, fmt.Errorf("expected clause name at %q", p.input[p.pos:])
	}
	kind, ok := clauseByName[name]
	if !ok {
		return Clause{}, false, fmt.Errorf("unknown clause %q", name)
	}
	c := Clause{Kind: kind}
	if kind == ClauseNowait {
		return c, false, nil
	}
	body, err := p.parseParenBody()
	if err != nil {
		return Clause{}, false, fmt.Errorf("clause %s: %v", name, err)
	}
	switch kind {
	case ClauseMap:
		dir := MapToFrom
		rest := body
		if i := strings.IndexByte(body, ':'); i >= 0 {
			switch strings.TrimSpace(body[:i]) {
			case "to":
				dir = MapTo
			case "from":
				dir = MapFrom
			case "tofrom":
				dir = MapToFrom
			case "alloc":
				dir = MapAlloc
			default:
				return Clause{}, false, fmt.Errorf("unknown map type %q", strings.TrimSpace(body[:i]))
			}
			rest = body[i+1:]
		}
		c.MapDir = dir
		c.Args = splitArgs(rest)
	case ClauseReduction:
		i := strings.IndexByte(body, ':')
		if i < 0 {
			return Clause{}, false, fmt.Errorf("reduction clause missing ':'")
		}
		c.Reducer = strings.TrimSpace(body[:i])
		c.Args = splitArgs(body[i+1:])
	default:
		c.Args = splitArgs(body)
		if len(c.Args) > 0 {
			if n, err := strconv.Atoi(c.Args[0]); err == nil {
				c.IntArg = n
			}
		}
	}
	return c, false, nil
}

// splitArgs splits a clause body on top-level commas, trimming whitespace.
// Commas inside brackets (array sections like a[0:n]) or parens are kept.
func splitArgs(s string) []string {
	var args []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				if a := strings.TrimSpace(s[start:i]); a != "" {
					args = append(args, a)
				}
				start = i + 1
			}
		}
	}
	if a := strings.TrimSpace(s[start:]); a != "" {
		args = append(args, a)
	}
	return args
}
