package omp

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Directive {
	t.Helper()
	d, err := ParsePragma(text)
	if err != nil {
		t.Fatalf("ParsePragma(%q): %v", text, err)
	}
	if d == nil {
		t.Fatalf("ParsePragma(%q) = nil directive", text)
	}
	return d
}

func TestParseSimpleDirectives(t *testing.T) {
	cases := []struct {
		text string
		kind DirectiveKind
	}{
		{"#pragma omp parallel", DirParallel},
		{"#pragma omp parallel for", DirParallelFor},
		{"#pragma omp for", DirFor},
		{"#pragma omp simd", DirSIMD},
		{"#pragma omp target", DirTarget},
		{"#pragma omp teams", DirTeams},
		{"#pragma omp distribute", DirDistribute},
		{"#pragma omp target teams", DirTargetTeams},
		{"#pragma omp teams distribute", DirTeamsDistribute},
		{"#pragma omp target teams distribute", DirTargetTeamsDistribute},
		{"#pragma omp target teams distribute parallel for", DirTargetTeamsDistributeParallelFor},
		{"#pragma omp distribute parallel for", DirDistributeParallelFor},
		{"#pragma omp target data", DirTargetData},
		{"#pragma omp target enter data", DirTargetEnterData},
		{"#pragma omp target exit data", DirTargetExitData},
		{"#pragma omp barrier", DirBarrier},
		{"#pragma omp atomic", DirAtomic},
		{"#pragma omp critical", DirCritical},
		{"#pragma omp single", DirSingle},
		{"#pragma omp master", DirMaster},
	}
	for _, c := range cases {
		d := mustParse(t, c.text)
		if d.Kind != c.kind {
			t.Errorf("ParsePragma(%q).Kind = %v, want %v", c.text, d.Kind, c.kind)
		}
		if len(d.Clauses) != 0 {
			t.Errorf("ParsePragma(%q) has %d clauses, want 0", c.text, len(d.Clauses))
		}
	}
}

func TestParseCollapse(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for collapse(2)")
	if d.CollapseDepth() != 2 {
		t.Errorf("CollapseDepth = %d, want 2", d.CollapseDepth())
	}
	d = mustParse(t, "#pragma omp parallel for")
	if d.CollapseDepth() != 1 {
		t.Errorf("default CollapseDepth = %d, want 1", d.CollapseDepth())
	}
}

func TestParseTeamsThreads(t *testing.T) {
	d := mustParse(t, "#pragma omp target teams distribute parallel for num_teams(128) num_threads(64) thread_limit(64)")
	if d.NumTeams() != 128 {
		t.Errorf("NumTeams = %d, want 128", d.NumTeams())
	}
	if d.NumThreads() != 64 {
		t.Errorf("NumThreads = %d, want 64", d.NumThreads())
	}
	if c, ok := d.Clause(ClauseThreadLimit); !ok || c.IntArg != 64 {
		t.Errorf("thread_limit clause = %+v, ok=%v", c, ok)
	}
}

func TestParseMapClauses(t *testing.T) {
	d := mustParse(t, "#pragma omp target teams distribute parallel for map(to: a[0:n], b[0:n]) map(from: c[0:n]) map(alloc: tmp[0:n])")
	var to, from, alloc int
	for _, c := range d.Clauses {
		if c.Kind != ClauseMap {
			continue
		}
		switch c.MapDir {
		case MapTo:
			to = len(c.Args)
		case MapFrom:
			from = len(c.Args)
		case MapAlloc:
			alloc = len(c.Args)
		}
	}
	if to != 2 || from != 1 || alloc != 1 {
		t.Errorf("map args to=%d from=%d alloc=%d, want 2/1/1", to, from, alloc)
	}
	if !d.HasDataTransfer() {
		t.Error("HasDataTransfer = false, want true")
	}
	d2 := mustParse(t, "#pragma omp target teams distribute parallel for map(alloc: t[0:n])")
	if d2.HasDataTransfer() {
		t.Error("alloc-only map should not count as data transfer")
	}
}

func TestParseMapDefaultDirection(t *testing.T) {
	d := mustParse(t, "#pragma omp target map(a, b)")
	c, ok := d.Clause(ClauseMap)
	if !ok {
		t.Fatal("no map clause")
	}
	if c.MapDir != MapToFrom {
		t.Errorf("default map dir = %v, want tofrom", c.MapDir)
	}
	if len(c.Args) != 2 {
		t.Errorf("map args = %v, want 2", c.Args)
	}
}

func TestParseReduction(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for reduction(+: sum, total)")
	c, ok := d.Clause(ClauseReduction)
	if !ok {
		t.Fatal("no reduction clause")
	}
	if c.Reducer != "+" {
		t.Errorf("reducer = %q, want +", c.Reducer)
	}
	if len(c.Args) != 2 || c.Args[0] != "sum" || c.Args[1] != "total" {
		t.Errorf("reduction args = %v", c.Args)
	}
}

func TestParseSchedule(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for schedule(static, 16)")
	c, ok := d.Clause(ClauseSchedule)
	if !ok {
		t.Fatal("no schedule clause")
	}
	if len(c.Args) != 2 || c.Args[0] != "static" || c.Args[1] != "16" {
		t.Errorf("schedule args = %v", c.Args)
	}
}

func TestParsePrivateShared(t *testing.T) {
	d := mustParse(t, "#pragma omp parallel for private(i, j) shared(a) firstprivate(x) default(none) nowait")
	wantKinds := []ClauseKind{ClausePrivate, ClauseShared, ClauseFirstPrivate, ClauseDefault, ClauseNowait}
	if len(d.Clauses) != len(wantKinds) {
		t.Fatalf("clauses = %v, want %d", d.Clauses, len(wantKinds))
	}
	for i, k := range wantKinds {
		if d.Clauses[i].Kind != k {
			t.Errorf("clause %d kind = %v, want %v", i, d.Clauses[i].Kind, k)
		}
	}
}

func TestParseArraySectionWithExpr(t *testing.T) {
	d := mustParse(t, "#pragma omp target map(tofrom: m[0:rows*cols])")
	c, _ := d.Clause(ClauseMap)
	if len(c.Args) != 1 || c.Args[0] != "m[0:rows*cols]" {
		t.Errorf("map args = %v", c.Args)
	}
}

func TestNonOMPPragma(t *testing.T) {
	d, err := ParsePragma("#pragma once")
	if err != nil {
		t.Fatalf("ParsePragma(#pragma once): %v", err)
	}
	if d != nil {
		t.Errorf("non-omp pragma parsed as %v", d)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"#pragma omp",
		"#pragma omp bogus",
		"#pragma omp parallel for collapse",
		"#pragma omp parallel for collapse(2",
		"#pragma omp parallel for frobnicate(3)",
		"#pragma omp parallel for reduction(sum)",
		"#pragma omp target map(sideways: a)",
		"not a pragma at all",
	}
	for _, c := range cases {
		if d, err := ParsePragma(c); err == nil && d != nil {
			t.Errorf("ParsePragma(%q) succeeded: %v", c, d)
		}
	}
}

func TestDirectiveString(t *testing.T) {
	d := mustParse(t, "#pragma omp target teams distribute parallel for collapse(2) map(to: a[0:n]) reduction(+: s) nowait")
	s := d.String()
	for _, want := range []string{
		"#pragma omp target teams distribute parallel for",
		"collapse(2)",
		"map(to: a[0:n])",
		"reduction(+: s)",
		"nowait",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestDirectiveStringRoundTrip(t *testing.T) {
	src := "#pragma omp target teams distribute parallel for collapse(2) num_teams(8) map(tofrom: a[0:n])"
	d1 := mustParse(t, src)
	d2 := mustParse(t, d1.String())
	if d1.Kind != d2.Kind || len(d1.Clauses) != len(d2.Clauses) {
		t.Fatalf("round trip mismatch: %v vs %v", d1, d2)
	}
	for i := range d1.Clauses {
		if d1.Clauses[i].String() != d2.Clauses[i].String() {
			t.Errorf("clause %d: %q vs %q", i, d1.Clauses[i].String(), d2.Clauses[i].String())
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !DirTargetTeamsDistributeParallelFor.IsTarget() {
		t.Error("TTDPF should be target")
	}
	if DirParallelFor.IsTarget() {
		t.Error("parallel for is not target")
	}
	if !DirParallelFor.IsLoopAssociated() {
		t.Error("parallel for is loop-associated")
	}
	if DirParallel.IsLoopAssociated() {
		t.Error("parallel alone is not loop-associated")
	}
	if !DirTargetTeamsDistributeParallelFor.IsLoopAssociated() {
		t.Error("TTDPF is loop-associated")
	}
}

func TestKindStrings(t *testing.T) {
	if DirTargetTeamsDistributeParallelFor.String() != "target teams distribute parallel for" {
		t.Errorf("bad spelling: %q", DirTargetTeamsDistributeParallelFor.String())
	}
	if DirectiveKind(999).String() != "DirectiveKind(999)" {
		t.Errorf("out of range: %q", DirectiveKind(999).String())
	}
	if ClauseKind(999).String() != "ClauseKind(999)" {
		t.Errorf("out of range: %q", ClauseKind(999).String())
	}
	if MapTo.String() != "to" || MapFrom.String() != "from" || MapAlloc.String() != "alloc" || MapToFrom.String() != "tofrom" {
		t.Error("map type spellings wrong")
	}
}

func TestSplitArgsNested(t *testing.T) {
	args := splitArgs("a[0:n], b[i(1,2):m], c")
	want := []string{"a[0:n]", "b[i(1,2):m]", "c"}
	if len(args) != len(want) {
		t.Fatalf("args = %v, want %v", args, want)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("arg %d = %q, want %q", i, args[i], want[i])
		}
	}
}
