package clex

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func texts(toks []Token) []string {
	ts := make([]string, len(toks))
	for i, t := range toks {
		ts[i] = t.Text
	}
	return ts
}

func mustTokenize(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestTokenizeSimpleDeclaration(t *testing.T) {
	toks := mustTokenize(t, "int x = 50;")
	want := []string{"int", "x", "=", "50", ";"}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if toks[0].Kind != Keyword {
		t.Errorf("token 0 kind = %v, want Keyword", toks[0].Kind)
	}
	if toks[1].Kind != Ident {
		t.Errorf("token 1 kind = %v, want Ident", toks[1].Kind)
	}
	if toks[3].Kind != IntLit {
		t.Errorf("token 3 kind = %v, want IntLit", toks[3].Kind)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks := mustTokenize(t, "int a;\nfloat b;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v, want 1:1", toks[0].Pos)
	}
	// "float" begins line 2, col 1.
	var f Token
	for _, tk := range toks {
		if tk.Text == "float" {
			f = tk
		}
	}
	if f.Pos.Line != 2 || f.Pos.Col != 1 {
		t.Errorf("float at %v, want 2:1", f.Pos)
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment
int /* block */ x; /* multi
line */ float y;`
	toks := mustTokenize(t, src)
	got := texts(toks)
	want := []string{"int", "x", ";", "float", "y", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizePragmaCaptured(t *testing.T) {
	src := "#pragma omp parallel for collapse(2)\nfor(;;){}"
	toks := mustTokenize(t, src)
	if toks[0].Kind != Pragma {
		t.Fatalf("first token kind = %v, want Pragma", toks[0].Kind)
	}
	if !strings.Contains(toks[0].Text, "omp parallel for collapse(2)") {
		t.Errorf("pragma text = %q", toks[0].Text)
	}
	if toks[1].Text != "for" {
		t.Errorf("token after pragma = %q, want for", toks[1].Text)
	}
}

func TestTokenizePragmaContinuation(t *testing.T) {
	src := "#pragma omp target teams \\\n    distribute parallel for\nint x;"
	toks := mustTokenize(t, src)
	if toks[0].Kind != Pragma {
		t.Fatalf("first token kind = %v, want Pragma", toks[0].Kind)
	}
	if !strings.Contains(toks[0].Text, "distribute parallel for") {
		t.Errorf("continuation not folded: %q", toks[0].Text)
	}
	if toks[1].Text != "int" {
		t.Errorf("token after pragma = %q, want int", toks[1].Text)
	}
}

func TestTokenizeIncludeSkipped(t *testing.T) {
	src := "#include <stdio.h>\n#define N 100\nint x;"
	toks := mustTokenize(t, src)
	got := texts(toks)
	want := []string{"int", "x", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", IntLit},
		{"42", IntLit},
		{"0x1F", IntLit},
		{"100UL", IntLit},
		{"3.14", FloatLit},
		{"1e10", FloatLit},
		{"2.5e-3", FloatLit},
		{".5", FloatLit},
		{"1.0f", FloatLit},
	}
	for _, c := range cases {
		toks := mustTokenize(t, c.src)
		if len(toks) != 1 {
			t.Errorf("Tokenize(%q) = %v, want 1 token", c.src, toks)
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("Tokenize(%q) kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("Tokenize(%q) text = %q", c.src, toks[0].Text)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "a <<= b >>= c << d >> e <= f >= g == h != i && j || k += l ++ m -- n -> o"
	toks := mustTokenize(t, src)
	var ops []string
	for _, tk := range toks {
		if tk.Kind == Punct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "++", "--", "->"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestTokenizeStringAndChar(t *testing.T) {
	toks := mustTokenize(t, `printf("hello \"world\"\n", 'a', '\n');`)
	var haveStr, haveChar int
	for _, tk := range toks {
		switch tk.Kind {
		case StringLit:
			haveStr++
		case CharLit:
			haveChar++
		}
	}
	if haveStr != 1 {
		t.Errorf("string literals = %d, want 1", haveStr)
	}
	if haveChar != 2 {
		t.Errorf("char literals = %d, want 2", haveChar)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		"'x",
		"`",
		"\"newline\nin string\"",
	}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestLexerErrorSticky(t *testing.T) {
	lx := New("`")
	if _, err := lx.Next(); err == nil {
		t.Fatal("want error on first Next")
	}
	if _, err := lx.Next(); err == nil {
		t.Fatal("error should be sticky")
	}
}

func TestTokenPredicates(t *testing.T) {
	tk := Token{Kind: Punct, Text: "("}
	if !tk.Is("(") || tk.Is(")") {
		t.Error("Is misbehaves")
	}
	kw := Token{Kind: Keyword, Text: "for"}
	if !kw.IsKeyword("for") || kw.IsKeyword("if") {
		t.Error("IsKeyword misbehaves")
	}
	if kw.Is("for") {
		t.Error("keyword should not satisfy Is (punct)")
	}
}

func TestIsTypeKeyword(t *testing.T) {
	for _, s := range []string{"int", "float", "double", "unsigned", "const", "void", "size_t"} {
		if !IsTypeKeyword(s) {
			t.Errorf("IsTypeKeyword(%q) = false", s)
		}
	}
	for _, s := range []string{"for", "if", "return", "x", ""} {
		if IsTypeKeyword(s) {
			t.Errorf("IsTypeKeyword(%q) = true", s)
		}
	}
}

func TestKindString(t *testing.T) {
	if EOF.String() != "EOF" || Pragma.String() != "Pragma" {
		t.Error("Kind.String basic names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range kind = %q", Kind(99).String())
	}
}

// TestTokenizeIdempotentOnIdents is a property test: any identifier-shaped
// string must round-trip as exactly one Ident or Keyword token.
func TestTokenizeIdempotentOnIdents(t *testing.T) {
	f := func(raw []byte) bool {
		// Build an identifier from raw bytes.
		var sb strings.Builder
		sb.WriteByte('_')
		for _, b := range raw {
			c := byte('a' + (b % 26))
			sb.WriteByte(c)
		}
		id := sb.String()
		toks, err := Tokenize(id)
		if err != nil || len(toks) != 1 {
			return false
		}
		return toks[0].Text == id && (toks[0].Kind == Ident || toks[0].Kind == Keyword)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTokenizeConcatenation is a property test: lexing two statements joined
// by whitespace yields the concatenation of their token streams.
func TestTokenizeConcatenation(t *testing.T) {
	pieces := []string{"int x = 1;", "for (i = 0; i < n; i++) {}", "a[i] += b[i] * 2.5;"}
	var all []Token
	var joined strings.Builder
	for _, p := range pieces {
		toks := mustTokenize(t, p)
		all = append(all, toks...)
		joined.WriteString(p)
		joined.WriteString("\n")
	}
	got := mustTokenize(t, joined.String())
	if len(got) != len(all) {
		t.Fatalf("concatenated stream has %d tokens, want %d", len(got), len(all))
	}
	for i := range got {
		if got[i].Text != all[i].Text || got[i].Kind != all[i].Kind {
			t.Errorf("token %d = %v, want %v", i, got[i], all[i])
		}
	}
}
