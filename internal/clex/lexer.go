package clex

import (
	"fmt"
	"strings"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("clex: %s: %s", e.Pos, e.Msg) }

// Lexer tokenizes C source text. Create one with New and call Next until it
// returns an EOF token, or use Tokenize to collect the whole stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize lexes the entire input and returns the token stream, excluding the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col, Offset: l.off} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(delta int) byte {
	if l.off+delta >= len(l.src) {
		return 0
	}
	return l.src[l.off+delta]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) errorf(p Pos, format string, args ...any) error {
	l.err = &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
	return l.err
}

// Next returns the next token. After an error, Next keeps returning the same
// error.
func (l *Lexer) Next() (Token, error) {
	if l.err != nil {
		return Token{}, l.err
	}
	for {
		l.skipSpaceAndComments()
		if l.off >= len(l.src) {
			return Token{Kind: EOF, Pos: l.pos()}, nil
		}
		c := l.peek()
		switch {
		case c == '#':
			tok, keep, err := l.lexDirective()
			if err != nil {
				return Token{}, err
			}
			if keep {
				return tok, nil
			}
			continue // skipped preprocessor line (e.g. #include)
		case isIdentStart(c):
			return l.lexIdent(), nil
		case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
			return l.lexNumber()
		case c == '"':
			return l.lexString()
		case c == '\'':
			return l.lexChar()
		default:
			return l.lexPunct()
		}
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

// lexDirective handles a preprocessor line. #pragma lines are returned as a
// single Pragma token with backslash continuations folded into spaces; all
// other directives (#include, #define, ...) are skipped.
func (l *Lexer) lexDirective() (Token, bool, error) {
	start := l.pos()
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\\' && (l.peekAt(1) == '\n' || (l.peekAt(1) == '\r' && l.peekAt(2) == '\n')) {
			l.advance() // backslash
			for l.peek() == '\r' {
				l.advance()
			}
			if l.peek() == '\n' {
				l.advance()
			}
			sb.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
		l.advance()
	}
	line := strings.TrimSpace(sb.String())
	rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	if strings.HasPrefix(rest, "pragma") {
		return Token{Kind: Pragma, Text: line, Pos: start}, true, nil
	}
	return Token{}, false, nil
}

func (l *Lexer) lexIdent() Token {
	start := l.pos()
	begin := l.off
	for l.off < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	text := l.src[begin:l.off]
	kind := Ident
	if keywords[text] {
		kind = Keyword
	}
	return Token{Kind: kind, Text: text, Pos: start}
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos()
	begin := l.off
	isFloat := false
	// Hex literal.
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peek()) {
			l.advance()
		}
		l.consumeIntSuffix()
		return Token{Kind: IntLit, Text: l.src[begin:l.off], Pos: start}, nil
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	if isFloat {
		if c := l.peek(); c == 'f' || c == 'F' || c == 'l' || c == 'L' {
			l.advance()
		}
		return Token{Kind: FloatLit, Text: l.src[begin:l.off], Pos: start}, nil
	}
	l.consumeIntSuffix()
	return Token{Kind: IntLit, Text: l.src[begin:l.off], Pos: start}, nil
}

func (l *Lexer) consumeIntSuffix() {
	for {
		c := l.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			l.advance()
			continue
		}
		return
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos()
	begin := l.off
	l.advance() // opening quote
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errorf(start, "unterminated string literal")
		}
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			l.advance()
			continue
		}
		if c == '"' {
			return Token{Kind: StringLit, Text: l.src[begin:l.off], Pos: start}, nil
		}
		if c == '\n' {
			return Token{}, l.errorf(start, "newline in string literal")
		}
	}
}

func (l *Lexer) lexChar() (Token, error) {
	start := l.pos()
	begin := l.off
	l.advance() // opening quote
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errorf(start, "unterminated character literal")
		}
		c := l.advance()
		if c == '\\' && l.off < len(l.src) {
			l.advance()
			continue
		}
		if c == '\'' {
			return Token{Kind: CharLit, Text: l.src[begin:l.off], Pos: start}, nil
		}
		if c == '\n' {
			return Token{}, l.errorf(start, "newline in character literal")
		}
	}
}

// punct3 and punct2 list multi-character operators, longest first.
var punct3 = []string{"<<=", ">>=", "..."}

var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"++", "--", "->",
}

func (l *Lexer) lexPunct() (Token, error) {
	start := l.pos()
	rest := l.src[l.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: Punct, Text: p, Pos: start}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: Punct, Text: p, Pos: start}, nil
		}
	}
	c := l.peek()
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '!', '&', '|', '^', '~',
		'?', ':', ';', ',', '.', '(', ')', '[', ']', '{', '}':
		l.advance()
		return Token{Kind: Punct, Text: string(c), Pos: start}, nil
	}
	return Token{}, l.errorf(start, "unexpected character %q", c)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
