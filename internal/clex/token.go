// Package clex implements a lexical analyzer for the C subset used by the
// ParaGraph benchmark kernels. It produces a token stream with source
// positions, captures #pragma lines verbatim (so the OpenMP layer can parse
// them), and skips comments and uninteresting preprocessor directives.
package clex

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Punctuation tokens use their literal spelling via Tok.Text;
// Kind distinguishes only the lexical class.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	CharLit
	StringLit
	Punct
	Pragma // a full "#pragma ..." line, continuations folded
)

var kindNames = [...]string{
	EOF:       "EOF",
	Ident:     "Ident",
	Keyword:   "Keyword",
	IntLit:    "IntLit",
	FloatLit:  "FloatLit",
	CharLit:   "CharLit",
	StringLit: "StringLit",
	Punct:     "Punct",
	Pragma:    "Pragma",
}

// String returns the name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position. Line and Col are 1-based; Offset is a 0-based
// byte offset into the input.
type Pos struct {
	Line   int
	Col    int
	Offset int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Text, t.Pos)
}

// Is reports whether the token is a punctuation token with the given
// spelling.
func (t Token) Is(punct string) bool { return t.Kind == Punct && t.Text == punct }

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(kw string) bool { return t.Kind == Keyword && t.Text == kw }

// keywords is the C keyword set recognized by the lexer. Identifiers not in
// this set lex as Ident.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "extern": true,
	"float": true, "for": true, "goto": true, "if": true,
	"inline": true, "int": true, "long": true, "register": true,
	"restrict": true, "return": true, "short": true, "signed": true,
	"sizeof": true, "static": true, "struct": true, "switch": true,
	"typedef": true, "union": true, "unsigned": true, "void": true,
	"volatile": true, "while": true, "size_t": true,
}

// IsTypeKeyword reports whether s names a builtin type or type qualifier that
// can begin a declaration in the supported subset.
func IsTypeKeyword(s string) bool {
	switch s {
	case "void", "char", "short", "int", "long", "float", "double",
		"signed", "unsigned", "const", "static", "size_t", "struct":
		return true
	}
	return false
}
