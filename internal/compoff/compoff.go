// Package compoff reimplements the paper's baseline: COMPOFF (Mishra et
// al., IPDPSW'22), a portable OpenMP-offloading cost model that feeds
// hand-engineered static kernel features — operation counts, memory
// accesses, loop structure, transfer volume, parallelism configuration —
// into a stacked multi-layer perceptron to predict kernel runtime. As in
// the paper, it targets GPU execution only (§V-D: "COMPOFF is currently
// only suitable for GPU execution") and serves as the comparison point for
// Figures 8 and 9.
package compoff

import (
	"fmt"
	"math"
	"math/rand"

	"paragraph/internal/analysis"
	"paragraph/internal/autodiff"
	"paragraph/internal/cparse"
	"paragraph/internal/nn"
	"paragraph/internal/tensor"
	"paragraph/internal/variants"
)

// NumFeatures is the engineered feature vector width.
const NumFeatures = 13

// FeatureNames documents the feature vector layout.
var FeatureNames = [NumFeatures]string{
	"log_flops", "log_intops", "log_loads", "log_stores", "log_branches",
	"log_mathcalls", "log_transfer_bytes", "log_parallel_iters",
	"collapse_depth", "loop_depth", "log_teams", "log_threads", "reductions",
}

// Features is one engineered feature vector.
type Features [NumFeatures]float64

// Extract computes the COMPOFF feature vector for a kernel instance. This
// is the manual feature engineering step the paper criticizes ("It requires
// figuring out how many operations are contained within a kernel") —
// implemented here via the same static analyzer the simulator uses.
func Extract(in variants.Instance, defaultTrip float64) (Features, error) {
	var f Features
	fn, err := cparse.ParseFunction(in.Source)
	if err != nil {
		return f, fmt.Errorf("compoff: %w", err)
	}
	if defaultTrip <= 0 {
		defaultTrip = 100
	}
	kc := analysis.AnalyzeKernel(fn, in.Bindings, defaultTrip)
	f[0] = math.Log1p(kc.Flops)
	f[1] = math.Log1p(kc.IntOps)
	f[2] = math.Log1p(kc.Loads)
	f[3] = math.Log1p(kc.Stores)
	f[4] = math.Log1p(kc.Branches)
	f[5] = math.Log1p(kc.MathCalls)
	f[6] = math.Log1p(kc.TransferBytes)
	f[7] = math.Log1p(kc.ParallelIters)
	f[8] = float64(kc.CollapseDepth)
	f[9] = float64(kc.MaxLoopDepth)
	f[10] = math.Log1p(float64(in.Teams))
	f[11] = math.Log1p(float64(in.Threads))
	f[12] = float64(kc.ReductionOps)
	return f, nil
}

// Sample is one COMPOFF training example.
type Sample struct {
	Feats  Features
	Target float64 // scaled log-runtime, same scaling as the GNN's
	RawUS  float64
	Name   string
}

// Model is the stacked MLP: NumFeatures → H → H → 1 with ReLU.
type Model struct {
	l1, l2, out *nn.Linear
	params      []*nn.Parameter
	// feature scaling fitted on the training set
	mins, maxs Features
	fitted     bool
}

// Config shapes the baseline model.
type Config struct {
	Hidden int // default 32
	Seed   int64
}

// NewModel constructs the MLP.
func NewModel(cfg Config) *Model {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		l1:  nn.NewLinear("compoff.l1", NumFeatures, cfg.Hidden, rng),
		l2:  nn.NewLinear("compoff.l2", cfg.Hidden, cfg.Hidden, rng),
		out: nn.NewLinear("compoff.out", cfg.Hidden, 1, rng),
	}
	m.params = append(m.params, m.l1.Params()...)
	m.params = append(m.params, m.l2.Params()...)
	m.params = append(m.params, m.out.Params()...)
	return m
}

// Params returns the trainable parameters.
func (m *Model) Params() []*nn.Parameter { return m.params }

// FitScaler learns per-feature MinMax bounds from the training samples.
func (m *Model) FitScaler(samples []*Sample) {
	for j := 0; j < NumFeatures; j++ {
		m.mins[j] = math.Inf(1)
		m.maxs[j] = math.Inf(-1)
	}
	for _, s := range samples {
		for j, v := range s.Feats {
			if v < m.mins[j] {
				m.mins[j] = v
			}
			if v > m.maxs[j] {
				m.maxs[j] = v
			}
		}
	}
	m.fitted = true
}

// scaleRow normalizes a feature vector to [0,1] per feature.
func (m *Model) scaleRow(f Features) *tensor.Matrix {
	row := tensor.New(1, NumFeatures)
	for j, v := range f {
		lo, hi := m.mins[j], m.maxs[j]
		if !m.fitted || hi <= lo {
			row.Data[j] = 0
			continue
		}
		x := (v - lo) / (hi - lo)
		row.Data[j] = math.Max(0, math.Min(1, x))
	}
	return row
}

// forward computes the scaled prediction for one sample.
func (m *Model) forward(f *nn.Forward, s *Sample) *autodiff.Var {
	tp := f.Tape
	x := tp.Const(m.scaleRow(s.Feats))
	h := tp.ReLU(m.l1.Apply(f, x))
	h = tp.ReLU(m.l2.Apply(f, h))
	return m.out.Apply(f, h)
}

// Predict returns the scaled prediction for one sample.
func (m *Model) Predict(s *Sample) float64 {
	fw := nn.NewInference()
	return m.forward(fw, s).Value.At(0, 0)
}

// PredictAll returns scaled predictions for all samples.
func (m *Model) PredictAll(samples []*Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = m.Predict(s)
	}
	return out
}

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs    int     // default 60
	BatchSize int     // default 32
	LR        float64 // default 3e-3
	Seed      int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 3e-3
	}
	return c
}

// History records per-epoch diagnostics.
type History struct {
	TrainLoss []float64
	ValRMSE   []float64
}

// Train fits the MLP with Adam + MSE (the original COMPOFF recipe). It fits
// the feature scaler on train if not already fitted.
func (m *Model) Train(train, val []*Sample, cfg TrainConfig) (History, error) {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		return History{}, fmt.Errorf("compoff: empty training set")
	}
	if !m.fitted {
		m.FitScaler(train)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	order := rng.Perm(len(train))
	var hist History
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			scale := 1 / float64(len(batch))
			var loss float64
			for _, idx := range batch {
				s := train[idx]
				fw := nn.NewForward()
				pred := m.forward(fw, s)
				lv := fw.Tape.MSE(pred, tensor.Scalar(s.Target))
				fw.Backward(lv)
				fw.Accumulate(scale)
				loss += lv.Value.At(0, 0) * scale
			}
			nn.ClipGradNorm(m.params, 5)
			opt.Step(m.params)
			epochLoss += loss
			batches++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(batches))
		hist.ValRMSE = append(hist.ValRMSE, m.EvalRMSE(val))
	}
	return hist, nil
}

// EvalRMSE returns the scaled-space RMSE over samples (0 when empty).
func (m *Model) EvalRMSE(samples []*Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var acc float64
	for _, s := range samples {
		d := m.Predict(s) - s.Target
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(samples)))
}
