package compoff

import (
	"math"
	"math/rand"
	"testing"

	"paragraph/internal/apps"
	"paragraph/internal/variants"
)

func instance(t *testing.T, kernelName string, kind variants.Kind, teams, threads int, bindings map[string]float64) variants.Instance {
	t.Helper()
	k, ok := apps.ByName(kernelName)
	if !ok {
		t.Fatalf("kernel %q not found", kernelName)
	}
	src, err := variants.Generate(k, kind, teams, threads)
	if err != nil {
		t.Fatal(err)
	}
	return variants.Instance{Kernel: k, Kind: kind, Teams: teams, Threads: threads, Bindings: bindings, Source: src}
}

func TestExtractFeatures(t *testing.T) {
	in := instance(t, "matmul", variants.GPUMem, 128, 64, map[string]float64{"n": 256})
	f, err := Extract(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Flops, loads, stores, transfer, parallel iters must be present.
	for _, idx := range []int{0, 2, 3, 6, 7} {
		if f[idx] <= 0 {
			t.Errorf("feature %s = %v, want > 0", FeatureNames[idx], f[idx])
		}
	}
	if f[10] != math.Log1p(128) {
		t.Errorf("log_teams = %v", f[10])
	}
	if f[11] != math.Log1p(64) {
		t.Errorf("log_threads = %v", f[11])
	}
	// Resident variant: no transfer.
	in2 := instance(t, "matmul", variants.GPU, 128, 64, map[string]float64{"n": 256})
	f2, err := Extract(in2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f2[6] != 0 {
		t.Errorf("resident transfer feature = %v", f2[6])
	}
	// Collapse variant exposes more parallel iterations.
	in3 := instance(t, "matmul", variants.GPUCollapse, 128, 64, map[string]float64{"n": 256})
	f3, err := Extract(in3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f3[7] <= f2[7] {
		t.Errorf("collapse parallel iters %v should exceed plain %v", f3[7], f2[7])
	}
	if f3[8] != 2 {
		t.Errorf("collapse depth = %v", f3[8])
	}
}

func TestExtractBadSource(t *testing.T) {
	in := variants.Instance{Source: "void broken( {"}
	if _, err := Extract(in, 100); err == nil {
		t.Error("bad source accepted")
	}
}

func TestFeaturesScaleWithProblemSize(t *testing.T) {
	small, err := Extract(instance(t, "matmul", variants.GPU, 64, 64, map[string]float64{"n": 64}), 100)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Extract(instance(t, "matmul", variants.GPU, 64, 64, map[string]float64{"n": 512}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if big[0] <= small[0] {
		t.Errorf("log_flops did not grow: %v vs %v", small[0], big[0])
	}
}

// synthSamples builds a learnable synthetic dataset: target is a linear
// function of two features.
func synthSamples(n int, seed int64) []*Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []*Sample
	for i := 0; i < n; i++ {
		var f Features
		for j := range f {
			f[j] = rng.Float64() * 10
		}
		target := 0.05*f[0] + 0.03*f[7]
		out = append(out, &Sample{Feats: f, Target: target})
	}
	return out
}

func TestTrainingConverges(t *testing.T) {
	samples := synthSamples(200, 1)
	train, val := samples[:180], samples[180:]
	m := NewModel(Config{Seed: 2, Hidden: 16})
	before := math.Inf(1)
	m.FitScaler(train)
	before = m.EvalRMSE(val)
	hist, err := m.Train(train, val, TrainConfig{Epochs: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := hist.ValRMSE[len(hist.ValRMSE)-1]
	if after >= before/2 {
		t.Errorf("training barely helped: %v -> %v", before, after)
	}
	if after > 0.08 {
		t.Errorf("val RMSE %v too high for synthetic linear task", after)
	}
	if len(hist.TrainLoss) != 40 {
		t.Errorf("history = %d epochs", len(hist.TrainLoss))
	}
}

func TestTrainEmpty(t *testing.T) {
	m := NewModel(Config{})
	if _, err := m.Train(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training accepted")
	}
}

func TestPredictDeterministicAndBatch(t *testing.T) {
	samples := synthSamples(10, 4)
	m := NewModel(Config{Seed: 5})
	m.FitScaler(samples)
	preds := m.PredictAll(samples)
	for i, s := range samples {
		if got := m.Predict(s); got != preds[i] {
			t.Errorf("sample %d: %v vs %v", i, got, preds[i])
		}
	}
	m2 := NewModel(Config{Seed: 5})
	m2.FitScaler(samples)
	if m2.Predict(samples[0]) != preds[0] {
		t.Error("same seed models disagree")
	}
}

func TestEvalRMSEEmpty(t *testing.T) {
	m := NewModel(Config{})
	if m.EvalRMSE(nil) != 0 {
		t.Error("empty EvalRMSE != 0")
	}
}

func TestScaleRowClamps(t *testing.T) {
	m := NewModel(Config{Seed: 1})
	m.FitScaler(synthSamples(20, 6))
	var f Features
	for j := range f {
		f[j] = 1e9 // way above fitted max
	}
	row := m.scaleRow(f)
	for j := 0; j < NumFeatures; j++ {
		if row.Data[j] < 0 || row.Data[j] > 1 {
			t.Errorf("scaled feature %d = %v", j, row.Data[j])
		}
	}
	// Unfitted model scales to zero.
	m2 := NewModel(Config{})
	row2 := m2.scaleRow(f)
	for j := 0; j < NumFeatures; j++ {
		if row2.Data[j] != 0 {
			t.Errorf("unfitted scale %d = %v", j, row2.Data[j])
		}
	}
}

func TestNumParamsAndNames(t *testing.T) {
	m := NewModel(Config{Hidden: 32})
	if len(m.Params()) != 6 { // 3 layers × (W, b)
		t.Errorf("params = %d", len(m.Params()))
	}
	for _, name := range FeatureNames {
		if name == "" {
			t.Error("unnamed feature")
		}
	}
}
