package cparse

import (
	"strings"
	"testing"

	"paragraph/internal/cast"
	"paragraph/internal/omp"
)

func mustParse(t *testing.T, src string) *cast.Node {
	t.Helper()
	root, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v\nsource:\n%s", err, src)
	}
	return root
}

func TestParseSimpleDeclAssign(t *testing.T) {
	// The paper's Figure 2 left example: int x; ... x = 50;
	root := mustParse(t, `
void f(void) {
    int x;
    x = 50;
}`)
	fn := cast.FindFunction(root, "f")
	if fn == nil {
		t.Fatal("function f not found")
	}
	body := fn.Body()
	if body == nil || body.Kind != cast.KindCompoundStmt {
		t.Fatal("no compound body")
	}
	if len(body.Children) != 2 {
		t.Fatalf("body has %d stmts, want 2:\n%s", len(body.Children), cast.DumpString(body))
	}
	ds := body.Children[0]
	if ds.Kind != cast.KindDeclStmt || ds.Children[0].Kind != cast.KindVarDecl {
		t.Errorf("first stmt = %s, want DeclStmt>VarDecl", ds)
	}
	asn := body.Children[1]
	if asn.Kind != cast.KindBinaryOperator || asn.Op != "=" {
		t.Fatalf("second stmt = %s, want BinaryOperator '='", asn)
	}
	// LHS: bare DeclRefExpr (lvalue); RHS: IntegerLiteral.
	if asn.Children[0].Kind != cast.KindDeclRefExpr {
		t.Errorf("assign LHS = %s, want DeclRefExpr", asn.Children[0])
	}
	if asn.Children[1].Kind != cast.KindIntegerLiteral || asn.Children[1].Value != "50" {
		t.Errorf("assign RHS = %s, want IntegerLiteral 50", asn.Children[1])
	}
	// Ref resolution: the DeclRefExpr must point at the VarDecl.
	if asn.Children[0].Ref != ds.Children[0] {
		t.Error("DeclRefExpr.Ref does not point at the VarDecl")
	}
}

func TestParseImplicitCastOnRead(t *testing.T) {
	root := mustParse(t, `
void f(void) {
    int x;
    int y;
    y = x + 1;
}`)
	// The read of x must be wrapped in ImplicitCastExpr.
	ices := cast.FindAll(root, cast.KindImplicitCastExpr)
	if len(ices) != 1 {
		t.Fatalf("found %d ImplicitCastExpr, want 1:\n%s", len(ices), cast.DumpString(root))
	}
	if ices[0].Children[0].Kind != cast.KindDeclRefExpr || ices[0].Children[0].Name != "x" {
		t.Errorf("cast wraps %s, want DeclRefExpr x", ices[0].Children[0])
	}
}

func TestParseForChildOrdering(t *testing.T) {
	// Paper §III-A.2: ForStmt children are [init, cond, body, inc].
	root := mustParse(t, `
void f(int n) {
    for (int i = 0; i < 50; i++) { n = n + 1; }
}`)
	fors := cast.FindAll(root, cast.KindForStmt)
	if len(fors) != 1 {
		t.Fatalf("found %d ForStmt, want 1", len(fors))
	}
	init, cond, body, inc := fors[0].ForParts()
	if init == nil {
		t.Fatal("ForParts returned nil")
	}
	if init.Kind != cast.KindDeclStmt {
		t.Errorf("init = %s, want DeclStmt", init)
	}
	if cond.Kind != cast.KindBinaryOperator || cond.Op != "<" {
		t.Errorf("cond = %s, want BinaryOperator '<'", cond)
	}
	if body.Kind != cast.KindCompoundStmt {
		t.Errorf("body = %s, want CompoundStmt", body)
	}
	if inc.Kind != cast.KindUnaryOperator || inc.Op != "post++" {
		t.Errorf("inc = %s, want UnaryOperator post++", inc)
	}
}

func TestParseForEmptyClauses(t *testing.T) {
	root := mustParse(t, `void f(void) { for (;;) { break; } }`)
	fs := cast.FindAll(root, cast.KindForStmt)[0]
	init, cond, body, inc := fs.ForParts()
	if init.Kind != cast.KindNullStmt || cond.Kind != cast.KindNullStmt || inc.Kind != cast.KindNullStmt {
		t.Errorf("empty clauses should be NullStmt, got %s / %s / %s", init, cond, inc)
	}
	if body.Kind != cast.KindCompoundStmt {
		t.Errorf("body = %s", body)
	}
}

func TestParseIfElse(t *testing.T) {
	root := mustParse(t, `
void f(int x) {
    if (x > 50) { x = 1; } else { x = 2; }
}`)
	ifs := cast.FindAll(root, cast.KindIfStmt)
	if len(ifs) != 1 {
		t.Fatalf("found %d IfStmt, want 1", len(ifs))
	}
	cond, then, els := ifs[0].IfParts()
	if cond.Kind != cast.KindBinaryOperator || cond.Op != ">" {
		t.Errorf("cond = %s", cond)
	}
	if then.Kind != cast.KindCompoundStmt || els == nil || els.Kind != cast.KindCompoundStmt {
		t.Errorf("then = %s, else = %v", then, els)
	}
}

func TestParseIfWithoutElse(t *testing.T) {
	root := mustParse(t, `void f(int x) { if (x) x = 1; }`)
	_, then, els := cast.FindAll(root, cast.KindIfStmt)[0].IfParts()
	if then == nil || els != nil {
		t.Errorf("then = %v, els = %v; want non-nil/nil", then, els)
	}
}

func TestParsePrecedence(t *testing.T) {
	root := mustParse(t, `void f(int a, int b, int c) { a = b + c * 2; }`)
	asn := cast.FindAll(root, cast.KindBinaryOperator)
	// Operators in preorder: =, +, *.
	var ops []string
	for _, n := range asn {
		ops = append(ops, n.Op)
	}
	want := []string{"=", "+", "*"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestParseRightAssociativeAssign(t *testing.T) {
	root := mustParse(t, `void f(int a, int b, int c) { a = b = c; }`)
	assigns := cast.FindAll(root, cast.KindBinaryOperator)
	if len(assigns) != 2 {
		t.Fatalf("found %d assigns, want 2", len(assigns))
	}
	// Outer assign's RHS must be the inner assign.
	outer := assigns[0]
	if outer.Children[1].Kind != cast.KindBinaryOperator {
		t.Errorf("a = (b = c) not right-associative:\n%s", cast.DumpString(outer))
	}
}

func TestParseCompoundAssign(t *testing.T) {
	root := mustParse(t, `void f(int a, int b) { a += b; a <<= 2; }`)
	cas := cast.FindAll(root, cast.KindCompoundAssignOperator)
	if len(cas) != 2 {
		t.Fatalf("found %d CompoundAssignOperator, want 2", len(cas))
	}
	if cas[0].Op != "+=" || cas[1].Op != "<<=" {
		t.Errorf("ops = %q, %q", cas[0].Op, cas[1].Op)
	}
}

func TestParseArraysAndCalls(t *testing.T) {
	root := mustParse(t, `
double g(double x);
void f(double *a, double *b, int n) {
    a[0] = g(b[n - 1]) * 2.0;
}`)
	subs := cast.FindAll(root, cast.KindArraySubscriptExpr)
	if len(subs) != 2 {
		t.Fatalf("found %d subscripts, want 2", len(subs))
	}
	calls := cast.FindAll(root, cast.KindCallExpr)
	if len(calls) != 1 || calls[0].Name != "g" {
		t.Fatalf("calls = %v", calls)
	}
	// Callee resolves to the prototype FunctionDecl.
	callee := calls[0].Children[0]
	if callee.Ref == nil || callee.Ref.Kind != cast.KindFunctionDecl {
		t.Error("callee not resolved to FunctionDecl")
	}
}

func TestParseNestedLoops(t *testing.T) {
	root := mustParse(t, `
void mm(double *a, double *b, double *c, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double sum = 0.0;
            for (int k = 0; k < n; k++) {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
}`)
	if got := len(cast.FindAll(root, cast.KindForStmt)); got != 3 {
		t.Errorf("found %d loops, want 3", got)
	}
	if d := cast.LoopDepth(root); d != 3 {
		t.Errorf("LoopDepth = %d, want 3", d)
	}
}

func TestParseOMPParallelFor(t *testing.T) {
	root := mustParse(t, `
void axpy(double *x, double *y, double a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}`)
	dirs := cast.Directives(root)
	if len(dirs) != 1 {
		t.Fatalf("found %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Dir.Kind != omp.DirParallelFor {
		t.Errorf("directive kind = %v", d.Dir.Kind)
	}
	if len(d.Children) != 1 || d.Children[0].Kind != cast.KindForStmt {
		t.Errorf("directive child = %v", d.Children)
	}
}

func TestParseOMPTargetCombined(t *testing.T) {
	root := mustParse(t, `
void k(double *a, int n, int m) {
    #pragma omp target teams distribute parallel for collapse(2) map(tofrom: a[0:n*m]) num_teams(8) num_threads(128)
    for (int i = 0; i < n; i++)
        for (int j = 0; j < m; j++)
            a[i * m + j] = 0.0;
}`)
	d := cast.Directives(root)[0]
	if d.Dir.Kind != omp.DirTargetTeamsDistributeParallelFor {
		t.Errorf("kind = %v", d.Dir.Kind)
	}
	if d.Dir.CollapseDepth() != 2 {
		t.Errorf("collapse = %d", d.Dir.CollapseDepth())
	}
	if !d.Dir.HasDataTransfer() {
		t.Error("map(tofrom:...) should imply data transfer")
	}
	if d.Dir.NumTeams() != 8 || d.Dir.NumThreads() != 128 {
		t.Errorf("teams/threads = %d/%d", d.Dir.NumTeams(), d.Dir.NumThreads())
	}
}

func TestParseWhileDoTernary(t *testing.T) {
	root := mustParse(t, `
void f(int n) {
    int i = 0;
    while (i < n) { i++; }
    do { i--; } while (i > 0);
    n = n > 0 ? n : -n;
}`)
	if len(cast.FindAll(root, cast.KindWhileStmt)) != 1 {
		t.Error("missing WhileStmt")
	}
	if len(cast.FindAll(root, cast.KindDoStmt)) != 1 {
		t.Error("missing DoStmt")
	}
	if len(cast.FindAll(root, cast.KindConditionalOperator)) != 1 {
		t.Error("missing ConditionalOperator")
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	root := mustParse(t, `void f(void) { int a = 1, b, c = 3; double *p, q; }`)
	vds := cast.FindAll(root, cast.KindVarDecl)
	if len(vds) != 5 {
		t.Fatalf("found %d VarDecls, want 5", len(vds))
	}
	if vds[3].TypeName != "double *" {
		t.Errorf("p type = %q, want double *", vds[3].TypeName)
	}
	if vds[4].TypeName != "double" {
		t.Errorf("q type = %q, want double", vds[4].TypeName)
	}
}

func TestParseGlobalsAndArrays(t *testing.T) {
	root := mustParse(t, `
int g = 10;
double table[100];
void f(void) { table[g] = 1.0; }
`)
	vds := cast.FindAll(root, cast.KindVarDecl)
	if len(vds) != 2 {
		t.Fatalf("found %d globals, want 2", len(vds))
	}
	if !strings.Contains(vds[1].TypeName, "[]") {
		t.Errorf("array type = %q", vds[1].TypeName)
	}
	refs := cast.FindAll(root, cast.KindDeclRefExpr)
	for _, r := range refs {
		if r.Name == "table" && r.Ref != vds[1] {
			t.Error("table ref not resolved to global decl")
		}
	}
}

func TestParseScoping(t *testing.T) {
	root := mustParse(t, `
void f(int x) {
    { int x; x = 1; }
    x = 2;
}`)
	fn := cast.FindFunction(root, "f")
	parm := fn.Params()[0]
	var innerDecl *cast.Node
	for _, vd := range cast.FindAll(root, cast.KindVarDecl) {
		if vd.Name == "x" {
			innerDecl = vd
		}
	}
	var refs []*cast.Node
	for _, r := range cast.FindAll(root, cast.KindDeclRefExpr) {
		if r.Name == "x" {
			refs = append(refs, r)
		}
	}
	if len(refs) != 2 {
		t.Fatalf("found %d refs to x, want 2", len(refs))
	}
	if refs[0].Ref != innerDecl {
		t.Error("inner x should resolve to inner decl")
	}
	if refs[1].Ref != parm {
		t.Error("outer x should resolve to parameter")
	}
}

func TestParseCastExpr(t *testing.T) {
	root := mustParse(t, `void f(int n) { double d = (double) n / 2; }`)
	ices := cast.FindAll(root, cast.KindImplicitCastExpr)
	var explicit int
	for _, c := range ices {
		if c.TypeName == "double" {
			explicit++
		}
	}
	if explicit != 1 {
		t.Errorf("found %d explicit double casts, want 1", explicit)
	}
}

func TestParseFinalizeIDs(t *testing.T) {
	root := mustParse(t, `void f(int a) { a = a + 1; }`)
	seen := map[int]bool{}
	max := -1
	cast.Walk(root, func(n *cast.Node) bool {
		if seen[n.ID] {
			t.Errorf("duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
		if n.ID > max {
			max = n.ID
		}
		if n != root && n.Parent == nil {
			t.Errorf("node %s has no parent", n)
		}
		return true
	})
	if max+1 != root.Size() {
		t.Errorf("IDs not dense: max=%d size=%d", max, root.Size())
	}
	if root.ID != 0 {
		t.Errorf("root ID = %d, want 0", root.ID)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void f( {",
		"void f(void) { int; }",
		"void f(void) { for (;; }",
		"void f(void) { if x; }",
		"void f(void) { a = ; }",
		"void f(void) { do { } (1); }",
		"void f(void) { 1 + ; }",
		"void f(void) {",
		"int 5x;",
		"#pragma omp bogus\nvoid f(void){}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnaryVariants(t *testing.T) {
	root := mustParse(t, `void f(int a, int *p) { a = -a; a = !a; a = ~a; ++a; --a; a++; a--; a = *p; p = &a; }`)
	ops := map[string]int{}
	for _, u := range cast.FindAll(root, cast.KindUnaryOperator) {
		ops[u.Op]++
	}
	for _, want := range []string{"-", "!", "~", "pre++", "pre--", "post++", "post--", "*", "&"} {
		if ops[want] != 1 {
			t.Errorf("unary %q count = %d, want 1", want, ops[want])
		}
	}
}

func TestParseTerminalOrder(t *testing.T) {
	root := mustParse(t, `void f(void) { int x; x = 50; }`)
	terms := cast.Terminals(root)
	// Terminals in source order: VarDecl is a leaf (no init), the DeclRefExpr
	// x, then IntegerLiteral 50.
	var names []string
	for _, n := range terms {
		switch {
		case n.Name != "":
			names = append(names, n.Name)
		case n.Value != "":
			names = append(names, n.Value)
		default:
			names = append(names, n.Kind.String())
		}
	}
	want := []string{"x", "x", "50"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("terminals = %v, want %v", names, want)
	}
}

func TestParseCommaExpr(t *testing.T) {
	root := mustParse(t, `void f(int a, int b) { for (a = 0, b = 0; a < 10; a++, b++) {} }`)
	var commas int
	for _, b := range cast.FindAll(root, cast.KindBinaryOperator) {
		if b.Op == "," {
			commas++
		}
	}
	if commas != 2 {
		t.Errorf("comma operators = %d, want 2", commas)
	}
}

func TestParseSizeof(t *testing.T) {
	root := mustParse(t, `void f(int n) { n = sizeof(double) + sizeof n; }`)
	var count int
	for _, u := range cast.FindAll(root, cast.KindUnaryOperator) {
		if u.Op == "sizeof" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("sizeof count = %d, want 2", count)
	}
}

func TestParseFunctionHelpers(t *testing.T) {
	root := mustParse(t, `int add(int a, int b) { return a + b; }`)
	fn := cast.FindFunction(root, "add")
	if fn == nil {
		t.Fatal("add not found")
	}
	if len(fn.Params()) != 2 {
		t.Errorf("params = %d, want 2", len(fn.Params()))
	}
	if fn.Body() == nil {
		t.Error("body missing")
	}
	if fn.TypeName != "int" {
		t.Errorf("return type = %q", fn.TypeName)
	}
	if cast.FindFunction(root, "nope") != nil {
		t.Error("found nonexistent function")
	}
}

func TestDumpContainsStructure(t *testing.T) {
	root := mustParse(t, `void f(void) { if (1) { } }`)
	s := cast.DumpString(root)
	for _, want := range []string{"TranslationUnitDecl", "FunctionDecl", "IfStmt", "IntegerLiteral"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
}
