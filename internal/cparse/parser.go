// Package cparse parses the C subset used by the ParaGraph benchmark kernels
// into a Clang-style AST (package cast). The subset covers what the paper's
// nine applications need: function definitions, scalar/pointer/array
// declarations, for/while/do/if control flow, full C expression precedence,
// and OpenMP pragmas attached to statements.
//
// Two Clang behaviours the ParaGraph representation relies on are mimicked:
//
//   - ImplicitCastExpr nodes wrap identifier and array reads in rvalue
//     position (the paper's Figure 2 shows this shape for `x = 50`).
//   - DeclRefExpr nodes carry a resolved reference to the VarDecl or
//     ParmVarDecl that declared the variable, which is what ParaGraph's Ref
//     edges connect.
package cparse

import (
	"fmt"
	"strings"

	"paragraph/internal/cast"
	"paragraph/internal/clex"
	"paragraph/internal/omp"
)

// Error is a parse error with a source position.
type Error struct {
	Pos clex.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("cparse: %s: %s", e.Pos, e.Msg) }

// Parse parses a complete translation unit and returns its root
// TranslationUnitDecl. The returned tree is finalized (IDs and parent
// pointers assigned).
func Parse(src string) (*cast.Node, error) {
	toks, err := clex.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.pushScope()
	root := cast.NewNode(cast.KindTranslationUnitDecl)
	for !p.atEOF() {
		if p.peek().Kind == clex.Pragma {
			// A pragma at file scope binds to the next function's body
			// statements only through textual position; we do not support
			// file-scope OpenMP pragmas, so reject loudly rather than drop.
			return nil, p.errorf("file-scope pragma not supported: %s", p.peek().Text)
		}
		decl, err := p.parseExternalDecl()
		if err != nil {
			return nil, err
		}
		root.AddChild(decl)
	}
	markAndWrapRValues(root)
	root.Finalize()
	return root, nil
}

// ParseFunction parses a source fragment expected to contain at least one
// function and returns the first FunctionDecl.
func ParseFunction(src string) (*cast.Node, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	fns := cast.FindAll(root, cast.KindFunctionDecl)
	if len(fns) == 0 {
		return nil, fmt.Errorf("cparse: no function in source")
	}
	return fns[0], nil
}

type parser struct {
	toks   []clex.Token
	pos    int
	scopes []map[string]*cast.Node
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() clex.Token {
	if p.atEOF() {
		return clex.Token{Kind: clex.EOF}
	}
	return p.toks[p.pos]
}

func (p *parser) peekAt(delta int) clex.Token {
	if p.pos+delta >= len(p.toks) {
		return clex.Token{Kind: clex.EOF}
	}
	return p.toks[p.pos+delta]
}

func (p *parser) next() clex.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) (clex.Token, error) {
	t := p.peek()
	if !t.Is(s) {
		return t, p.errorf("expected %q, found %q", s, t.Text)
	}
	return p.next(), nil
}

// --- scopes ---

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]*cast.Node{}) }

func (p *parser) popScope() { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) declare(name string, decl *cast.Node) {
	p.scopes[len(p.scopes)-1][name] = decl
}

func (p *parser) lookup(name string) *cast.Node {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if d, ok := p.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

// --- declarations ---

// parseTypeSpec consumes a sequence of type keywords/qualifiers and pointer
// stars, returning the type spelling. It assumes the current token starts a
// type.
func (p *parser) parseTypeSpec() (string, error) {
	var parts []string
	for {
		t := p.peek()
		if t.Kind == clex.Keyword && clex.IsTypeKeyword(t.Text) {
			parts = append(parts, t.Text)
			p.next()
			if t.Text == "struct" {
				name := p.peek()
				if name.Kind != clex.Ident {
					return "", p.errorf("expected struct name, found %q", name.Text)
				}
				parts = append(parts, name.Text)
				p.next()
			}
			continue
		}
		break
	}
	if len(parts) == 0 {
		return "", p.errorf("expected type, found %q", p.peek().Text)
	}
	ty := strings.Join(parts, " ")
	for p.peek().Is("*") {
		ty += " *"
		p.next()
	}
	return ty, nil
}

// startsType reports whether the current token begins a type specifier.
func (p *parser) startsType() bool {
	t := p.peek()
	return t.Kind == clex.Keyword && clex.IsTypeKeyword(t.Text)
}

// parseExternalDecl parses a function definition or a file-scope variable
// declaration.
func (p *parser) parseExternalDecl() (*cast.Node, error) {
	ty, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	nameTok := p.peek()
	if nameTok.Kind != clex.Ident {
		return nil, p.errorf("expected identifier after type %q, found %q", ty, nameTok.Text)
	}
	p.next()
	if p.peek().Is("(") {
		return p.parseFunctionRest(ty, nameTok)
	}
	// File-scope variable declaration; reuse the declarator tail logic.
	declStmt, err := p.parseDeclRest(ty, nameTok)
	if err != nil {
		return nil, err
	}
	return declStmt, nil
}

// parseFunctionRest parses "( params ) { body }" after the return type and
// function name have been consumed.
func (p *parser) parseFunctionRest(retTy string, nameTok clex.Token) (*cast.Node, error) {
	fn := cast.NewNode(cast.KindFunctionDecl)
	fn.Name = nameTok.Text
	fn.TypeName = retTy
	fn.Pos = nameTok.Pos
	p.declare(nameTok.Text, fn)
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	for !p.peek().Is(")") {
		if p.peek().IsKeyword("void") && p.peekAt(1).Is(")") {
			p.next()
			break
		}
		ty, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		pn := p.peek()
		if pn.Kind != clex.Ident {
			return nil, p.errorf("expected parameter name, found %q", pn.Text)
		}
		p.next()
		// Array parameter suffixes: a[] or a[N][M].
		for p.peek().Is("[") {
			depth := 1
			p.next()
			for depth > 0 {
				t := p.next()
				switch {
				case t.Is("["):
					depth++
				case t.Is("]"):
					depth--
				case t.Kind == clex.EOF:
					return nil, p.errorf("unterminated array parameter")
				}
			}
			ty += " *"
		}
		parm := cast.NewNode(cast.KindParmVarDecl)
		parm.Name = pn.Text
		parm.TypeName = ty
		parm.Pos = pn.Pos
		p.declare(pn.Text, parm)
		fn.AddChild(parm)
		if p.peek().Is(",") {
			p.next()
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.peek().Is(";") { // prototype
		p.next()
		return fn, nil
	}
	body, err := p.parseCompound()
	if err != nil {
		return nil, err
	}
	fn.AddChild(body)
	return fn, nil
}

// parseDeclRest parses the declarator list after "type name" has been
// consumed, producing a DeclStmt holding one or more VarDecls.
func (p *parser) parseDeclRest(ty string, first clex.Token) (*cast.Node, error) {
	ds := cast.NewNode(cast.KindDeclStmt)
	ds.Pos = first.Pos
	nameTok := first
	curTy := ty
	for {
		vd := cast.NewNode(cast.KindVarDecl)
		vd.Name = nameTok.Text
		vd.TypeName = curTy
		vd.Pos = nameTok.Pos
		// Array declarator: int a[N] or int a[N][M].
		for p.peek().Is("[") {
			p.next()
			if !p.peek().Is("]") {
				size, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				vd.AddChild(size)
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			vd.TypeName += " []"
		}
		if p.peek().Is("=") {
			p.next()
			init, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			vd.AddChild(init)
		}
		p.declare(vd.Name, vd)
		ds.AddChild(vd)
		if !p.peek().Is(",") {
			break
		}
		p.next()
		// In C the '*' binds to the declarator, not the type: in
		// "double *p, q;" q is a plain double. parseTypeSpec folded the
		// first declarator's stars into ty, so strip them for the rest.
		curTy = strings.TrimRight(strings.ReplaceAll(ty, " *", ""), " ")
		for p.peek().Is("*") {
			curTy += " *"
			p.next()
		}
		nameTok = p.peek()
		if nameTok.Kind != clex.Ident {
			return nil, p.errorf("expected identifier in declaration, found %q", nameTok.Text)
		}
		p.next()
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return ds, nil
}

// --- statements ---

func (p *parser) parseCompound() (*cast.Node, error) {
	open, err := p.expectPunct("{")
	if err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	cs := cast.NewNode(cast.KindCompoundStmt)
	cs.Pos = open.Pos
	for !p.peek().Is("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated compound statement")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if st != nil {
			cs.AddChild(st)
		}
	}
	p.next() // '}'
	return cs, nil
}

func (p *parser) parseStmt() (*cast.Node, error) {
	t := p.peek()
	switch {
	case t.Kind == clex.Pragma:
		return p.parsePragmaStmt()
	case t.Is("{"):
		return p.parseCompound()
	case t.Is(";"):
		p.next()
		ns := cast.NewNode(cast.KindNullStmt)
		ns.Pos = t.Pos
		return ns, nil
	case t.IsKeyword("for"):
		return p.parseFor()
	case t.IsKeyword("while"):
		return p.parseWhile()
	case t.IsKeyword("do"):
		return p.parseDo()
	case t.IsKeyword("if"):
		return p.parseIf()
	case t.IsKeyword("return"):
		p.next()
		rs := cast.NewNode(cast.KindReturnStmt)
		rs.Pos = t.Pos
		if !p.peek().Is(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.AddChild(e)
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return rs, nil
	case t.IsKeyword("break"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		bs := cast.NewNode(cast.KindBreakStmt)
		bs.Pos = t.Pos
		return bs, nil
	case t.IsKeyword("continue"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		cs := cast.NewNode(cast.KindContinueStmt)
		cs.Pos = t.Pos
		return cs, nil
	case p.startsType():
		ty, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		nameTok := p.peek()
		if nameTok.Kind != clex.Ident {
			return nil, p.errorf("expected identifier in declaration, found %q", nameTok.Text)
		}
		p.next()
		return p.parseDeclRest(ty, nameTok)
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return e, nil
	}
}

// parsePragmaStmt parses a pragma followed by its associated statement. A
// recognized OpenMP pragma wraps the statement in an OMPExecutableDirective
// node; unrecognized non-OpenMP pragmas are dropped and the following
// statement is returned bare.
func (p *parser) parsePragmaStmt() (*cast.Node, error) {
	t := p.next()
	d, err := omp.ParsePragma(t.Text)
	if err != nil {
		return nil, &Error{Pos: t.Pos, Msg: err.Error()}
	}
	// Standalone directives (barrier) have no associated statement.
	if d != nil && d.Kind == omp.DirBarrier {
		n := cast.NewNode(cast.KindOMPExecutableDirective)
		n.Dir = d
		n.Pos = t.Pos
		return n, nil
	}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if d == nil {
		return stmt, nil
	}
	n := cast.NewNode(cast.KindOMPExecutableDirective)
	n.Dir = d
	n.Pos = t.Pos
	// Clang materializes clause payloads as expression children of the
	// directive; without them, resident-data and transferring variants of
	// the same kernel would be indistinguishable graphs.
	for _, c := range d.Clauses {
		n.AddChild(p.clauseNode(c, t.Pos))
	}
	n.AddChild(stmt)
	return n, nil
}

// clauseNode builds the AST payload of one OpenMP clause. Variable
// references resolve against the current scope so Ref edges reach the
// mapped arrays' declarations.
func (p *parser) clauseNode(c omp.Clause, pos clex.Pos) *cast.Node {
	cn := cast.NewNode(cast.KindOMPClause)
	cn.Name = c.Kind.String()
	cn.Clause = c.Kind
	cn.Pos = pos
	switch c.Kind {
	case omp.ClauseCollapse, omp.ClauseNumTeams, omp.ClauseNumThreads,
		omp.ClauseThreadLimit, omp.ClauseSIMDLen:
		lit := cast.NewNode(cast.KindIntegerLiteral)
		if len(c.Args) > 0 {
			lit.Value = c.Args[0]
		}
		lit.Pos = pos
		cn.AddChild(lit)
	case omp.ClauseMap:
		for _, arg := range c.Args {
			cn.AddChild(p.sectionNode(arg, pos))
		}
	case omp.ClauseReduction, omp.ClausePrivate, omp.ClauseFirstPrivate,
		omp.ClauseLastPrivate, omp.ClauseShared:
		cn.Op = c.Reducer
		for _, arg := range c.Args {
			ref := cast.NewNode(cast.KindDeclRefExpr)
			ref.Name = arg
			ref.Ref = p.lookup(arg)
			ref.Pos = pos
			cn.AddChild(ref)
		}
	case omp.ClauseSchedule, omp.ClauseDefault, omp.ClauseIf, omp.ClauseDevice:
		for _, arg := range c.Args {
			lit := cast.NewNode(cast.KindStringLiteral)
			lit.Value = arg
			lit.Pos = pos
			cn.AddChild(lit)
		}
	}
	return cn
}

// sectionNode parses a map-clause array section like "a[0:n*m]" into an
// ArraySubscriptExpr-shaped payload: base DeclRefExpr (scope-resolved) with
// the section length expression as the index. Bare names become plain
// DeclRefExprs.
func (p *parser) sectionNode(arg string, pos clex.Pos) *cast.Node {
	base := arg
	var lenExpr string
	if open := strings.IndexByte(arg, '['); open >= 0 {
		base = strings.TrimSpace(arg[:open])
		if close := strings.LastIndexByte(arg, ']'); close > open {
			section := arg[open+1 : close]
			if colon := strings.IndexByte(section, ':'); colon >= 0 {
				lenExpr = strings.TrimSpace(section[colon+1:])
			} else {
				lenExpr = strings.TrimSpace(section)
			}
		}
	}
	ref := cast.NewNode(cast.KindDeclRefExpr)
	ref.Name = base
	ref.Ref = p.lookup(base)
	ref.Pos = pos
	if lenExpr == "" {
		return ref
	}
	sub := cast.NewNode(cast.KindArraySubscriptExpr)
	sub.Pos = pos
	length := p.parseEmbeddedExpr(lenExpr, pos)
	sub.AddChild(ref, length)
	return sub
}

// parseEmbeddedExpr parses an expression string (from a pragma clause) in
// the current scope. Malformed expressions degrade to a DeclRefExpr holding
// the raw text rather than failing the whole parse.
func (p *parser) parseEmbeddedExpr(src string, pos clex.Pos) *cast.Node {
	toks, err := clex.Tokenize(src)
	if err != nil || len(toks) == 0 {
		raw := cast.NewNode(cast.KindDeclRefExpr)
		raw.Name = src
		raw.Pos = pos
		return raw
	}
	sub := &parser{toks: toks, scopes: p.scopes}
	e, err := sub.parseExpr()
	if err != nil || !sub.atEOF() {
		raw := cast.NewNode(cast.KindDeclRefExpr)
		raw.Name = src
		raw.Pos = pos
		return raw
	}
	return e
}

// parseFor builds a ForStmt with the paper's child ordering:
// [init, cond, body, inc]. Omitted clauses become NullStmt placeholders so
// the ForExec/ForNext edge construction always has all four anchors.
func (p *parser) parseFor() (*cast.Node, error) {
	forTok := p.next() // 'for'
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()

	fs := cast.NewNode(cast.KindForStmt)
	fs.Pos = forTok.Pos

	null := func() *cast.Node {
		n := cast.NewNode(cast.KindNullStmt)
		n.Pos = p.peek().Pos
		return n
	}

	// Init clause.
	var init *cast.Node
	switch {
	case p.peek().Is(";"):
		init = null()
		p.next()
	case p.startsType():
		ty, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		nameTok := p.peek()
		if nameTok.Kind != clex.Ident {
			return nil, p.errorf("expected identifier in for-init, found %q", nameTok.Text)
		}
		p.next()
		init, err = p.parseDeclRest(ty, nameTok) // consumes ';'
		if err != nil {
			return nil, err
		}
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		init = e
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}

	// Condition clause.
	var cond *cast.Node
	if p.peek().Is(";") {
		cond = null()
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cond = e
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	// Increment clause.
	var inc *cast.Node
	if p.peek().Is(")") {
		inc = null()
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		inc = e
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}

	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.AddChild(init, cond, body, inc)
	return fs, nil
}

func (p *parser) parseWhile() (*cast.Node, error) {
	wTok := p.next()
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	ws := cast.NewNode(cast.KindWhileStmt)
	ws.Pos = wTok.Pos
	ws.AddChild(cond, body)
	return ws, nil
}

func (p *parser) parseDo() (*cast.Node, error) {
	dTok := p.next()
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.peek().IsKeyword("while") {
		return nil, p.errorf("expected 'while' after do body, found %q", p.peek().Text)
	}
	p.next()
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	ds := cast.NewNode(cast.KindDoStmt)
	ds.Pos = dTok.Pos
	ds.AddChild(body, cond)
	return ds, nil
}

func (p *parser) parseIf() (*cast.Node, error) {
	iTok := p.next()
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	is := cast.NewNode(cast.KindIfStmt)
	is.Pos = iTok.Pos
	is.AddChild(cond, then)
	if p.peek().IsKeyword("else") {
		p.next()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		is.AddChild(els)
	}
	return is, nil
}

// --- expressions ---

func (p *parser) parseExpr() (*cast.Node, error) {
	e, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	// Comma expressions: fold left into BinaryOperator ','.
	for p.peek().Is(",") {
		opTok := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		bo := cast.NewNode(cast.KindBinaryOperator)
		bo.Op = ","
		bo.Pos = opTok.Pos
		bo.AddChild(e, rhs)
		e = bo
	}
	return e, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssign() (*cast.Node, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == clex.Punct && assignOps[t.Text] {
		p.next()
		rhs, err := p.parseAssign() // right associative
		if err != nil {
			return nil, err
		}
		kind := cast.KindBinaryOperator
		if t.Text != "=" {
			kind = cast.KindCompoundAssignOperator
		}
		n := cast.NewNode(kind)
		n.Op = t.Text
		n.Pos = t.Pos
		n.AddChild(lhs, rhs)
		return n, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (*cast.Node, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.peek().Is("?") {
		return cond, nil
	}
	qTok := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	n := cast.NewNode(cast.KindConditionalOperator)
	n.Pos = qTok.Pos
	n.AddChild(cond, then, els)
	return n, nil
}

// binPrec returns the precedence of a binary operator (higher binds tighter)
// or -1 when the token is not a binary operator.
func binPrec(t clex.Token) int {
	if t.Kind != clex.Punct {
		return -1
	}
	switch t.Text {
	case "||":
		return 1
	case "&&":
		return 2
	case "|":
		return 3
	case "^":
		return 4
	case "&":
		return 5
	case "==", "!=":
		return 6
	case "<", ">", "<=", ">=":
		return 7
	case "<<", ">>":
		return 8
	case "+", "-":
		return 9
	case "*", "/", "%":
		return 10
	}
	return -1
}

func (p *parser) parseBinary(minPrec int) (*cast.Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		prec := binPrec(t)
		if prec < 0 || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		bo := cast.NewNode(cast.KindBinaryOperator)
		bo.Op = t.Text
		bo.Pos = t.Pos
		bo.AddChild(lhs, rhs)
		lhs = bo
	}
}

func (p *parser) parseUnary() (*cast.Node, error) {
	t := p.peek()
	if t.Kind == clex.Punct {
		switch t.Text {
		case "+", "-", "!", "~", "*", "&", "++", "--":
			p.next()
			operand, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			u := cast.NewNode(cast.KindUnaryOperator)
			u.Op = t.Text
			u.Pos = t.Pos
			if t.Text == "++" || t.Text == "--" {
				u.Op = "pre" + t.Text
			}
			u.AddChild(operand)
			return u, nil
		}
	}
	if t.IsKeyword("sizeof") {
		p.next()
		if p.peek().Is("(") {
			p.next()
			var inner *cast.Node
			if p.startsType() {
				ty, err := p.parseTypeSpec()
				if err != nil {
					return nil, err
				}
				inner = cast.NewNode(cast.KindDeclRefExpr)
				inner.Name = ty
				inner.TypeName = ty
				inner.Pos = t.Pos
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				inner = e
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			u := cast.NewNode(cast.KindUnaryOperator)
			u.Op = "sizeof"
			u.Pos = t.Pos
			u.AddChild(inner)
			return u, nil
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := cast.NewNode(cast.KindUnaryOperator)
		u.Op = "sizeof"
		u.Pos = t.Pos
		u.AddChild(operand)
		return u, nil
	}
	// Cast expression: "(type) expr".
	if t.Is("(") && p.peekAt(1).Kind == clex.Keyword && clex.IsTypeKeyword(p.peekAt(1).Text) {
		p.next()
		ty, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		c := cast.NewNode(cast.KindImplicitCastExpr)
		c.TypeName = ty
		c.Pos = t.Pos
		c.AddChild(operand)
		return c, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (*cast.Node, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Is("("):
			p.next()
			call := cast.NewNode(cast.KindCallExpr)
			call.Pos = t.Pos
			call.Name = e.Name
			call.AddChild(e)
			for !p.peek().Is(")") {
				arg, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.AddChild(arg)
				if p.peek().Is(",") {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			e = call
		case t.Is("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			sub := cast.NewNode(cast.KindArraySubscriptExpr)
			sub.Pos = t.Pos
			sub.AddChild(e, idx)
			e = sub
		case t.Is("++"), t.Is("--"):
			p.next()
			u := cast.NewNode(cast.KindUnaryOperator)
			u.Op = "post" + t.Text
			u.Pos = t.Pos
			u.AddChild(e)
			e = u
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (*cast.Node, error) {
	t := p.peek()
	switch t.Kind {
	case clex.IntLit:
		p.next()
		n := cast.NewNode(cast.KindIntegerLiteral)
		n.Value = t.Text
		n.Pos = t.Pos
		return n, nil
	case clex.FloatLit:
		p.next()
		n := cast.NewNode(cast.KindFloatingLiteral)
		n.Value = t.Text
		n.Pos = t.Pos
		return n, nil
	case clex.StringLit:
		p.next()
		n := cast.NewNode(cast.KindStringLiteral)
		n.Value = t.Text
		n.Pos = t.Pos
		return n, nil
	case clex.CharLit:
		p.next()
		n := cast.NewNode(cast.KindCharacterLiteral)
		n.Value = t.Text
		n.Pos = t.Pos
		return n, nil
	case clex.Ident:
		p.next()
		n := cast.NewNode(cast.KindDeclRefExpr)
		n.Name = t.Text
		n.Pos = t.Pos
		n.Ref = p.lookup(t.Text)
		return n, nil
	}
	if t.Is("(") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		pe := cast.NewNode(cast.KindParenExpr)
		pe.Pos = t.Pos
		pe.AddChild(e)
		return pe, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

// --- rvalue marking / ImplicitCastExpr insertion ---

// markAndWrapRValues wraps DeclRefExpr and ArraySubscriptExpr nodes used in
// rvalue position in ImplicitCastExpr nodes, matching Clang's
// LValueToRValue casts and the tree shape shown in the paper's Figure 2.
// Lvalue positions — assignment LHS, ++/-- operand, & operand, callee, array
// base — are left bare.
func markAndWrapRValues(root *cast.Node) {
	var rec func(n *cast.Node)
	wrap := func(parent *cast.Node, idx int) {
		child := parent.Children[idx]
		if child.Kind != cast.KindDeclRefExpr && child.Kind != cast.KindArraySubscriptExpr {
			return
		}
		// A reference to a function (e.g. in a call we already skip the
		// callee) or unresolved name still gets wrapped: Clang does the same
		// for rvalue function-pointer uses, and uniformity keeps the graph
		// builder simple.
		ice := cast.NewNode(cast.KindImplicitCastExpr)
		ice.TypeName = "LValueToRValue"
		ice.Pos = child.Pos
		ice.AddChild(child)
		parent.Children[idx] = ice
	}
	rec = func(n *cast.Node) {
		for i, c := range n.Children {
			rec(c)
			switch n.Kind {
			case cast.KindBinaryOperator, cast.KindCompoundAssignOperator:
				// LHS of assignment stays an lvalue; compound assignment
				// both reads and writes, but Clang keeps the LHS bare.
				if i == 0 && (n.Op == "=" || assignOps[n.Op]) {
					continue
				}
				wrap(n, i)
			case cast.KindUnaryOperator:
				switch n.Op {
				case "pre++", "pre--", "post++", "post--", "&", "sizeof":
					continue
				}
				wrap(n, i)
			case cast.KindCallExpr:
				if i == 0 {
					continue // callee
				}
				wrap(n, i)
			case cast.KindArraySubscriptExpr:
				if i == 0 {
					continue // array base stays bare in our subset
				}
				wrap(n, i)
			case cast.KindVarDecl, cast.KindReturnStmt, cast.KindParenExpr,
				cast.KindConditionalOperator, cast.KindIfStmt, cast.KindWhileStmt,
				cast.KindDoStmt, cast.KindInitListExpr:
				wrap(n, i)
			case cast.KindForStmt:
				if i == 1 { // condition is read
					wrap(n, i)
				}
			}
		}
	}
	rec(root)
}
