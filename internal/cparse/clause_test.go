package cparse

import (
	"testing"

	"paragraph/internal/analysis"
	"paragraph/internal/cast"
	"paragraph/internal/omp"
)

func TestClausePayloadNodes(t *testing.T) {
	root := mustParse(t, `
void k(double *a, double *b, int n, int m) {
    #pragma omp target teams distribute parallel for collapse(2) num_teams(8) map(tofrom: a[0:n*m]) map(to: b[0:n]) reduction(+: n)
    for (int i = 0; i < n; i++)
        for (int j = 0; j < m; j++)
            a[i * m + j] = b[i];
}`)
	dir := cast.Directives(root)[0]
	clauses := cast.FindAll(dir, cast.KindOMPClause)
	if len(clauses) != 5 {
		t.Fatalf("clause nodes = %d, want 5:\n%s", len(clauses), cast.DumpString(dir))
	}
	byKind := map[omp.ClauseKind][]*cast.Node{}
	for _, c := range clauses {
		byKind[c.Clause] = append(byKind[c.Clause], c)
	}

	// collapse(2): one IntegerLiteral child with value 2.
	col := byKind[omp.ClauseCollapse]
	if len(col) != 1 || len(col[0].Children) != 1 {
		t.Fatalf("collapse clause shape wrong")
	}
	if v, ok := analysis.Eval(col[0].Children[0], nil); !ok || v != 2 {
		t.Errorf("collapse literal = %v, %v", v, ok)
	}

	// map(tofrom: a[0:n*m]): ArraySubscriptExpr with resolved base and a
	// length expression referencing the parameters.
	maps := byKind[omp.ClauseMap]
	if len(maps) != 2 {
		t.Fatalf("map clauses = %d", len(maps))
	}
	sect := maps[0].Children[0]
	if sect.Kind != cast.KindArraySubscriptExpr {
		t.Fatalf("section node = %s", sect)
	}
	base := sect.Children[0]
	if base.Kind != cast.KindDeclRefExpr || base.Name != "a" {
		t.Errorf("section base = %s", base)
	}
	if base.Ref == nil || base.Ref.Kind != cast.KindParmVarDecl {
		t.Error("section base unresolved")
	}
	if v, ok := analysis.Eval(sect.Children[1], analysis.Env{"n": 10, "m": 5}); !ok || v != 50 {
		t.Errorf("section length eval = %v, %v; want 50", v, ok)
	}

	// reduction(+: n): DeclRefExpr child resolved to the parameter, with
	// the reducer recorded.
	red := byKind[omp.ClauseReduction]
	if len(red) != 1 || red[0].Op != "+" {
		t.Fatalf("reduction clause shape wrong: %+v", red)
	}
	if red[0].Children[0].Ref == nil {
		t.Error("reduction variable unresolved")
	}

	// The associated loop is reachable via AssociatedStmt and is the last
	// child.
	loop := analysis.AssociatedStmt(dir)
	if loop == nil || loop.Kind != cast.KindForStmt {
		t.Fatalf("associated stmt = %v", loop)
	}
	if dir.Children[len(dir.Children)-1] != loop {
		t.Error("associated stmt is not the last child")
	}
}

func TestClauseNodesAbsentWithoutClauses(t *testing.T) {
	root := mustParse(t, `
void k(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) a[i] = 0.0;
}`)
	dir := cast.Directives(root)[0]
	if len(dir.Children) != 1 {
		t.Fatalf("children = %d, want 1 (loop only)", len(dir.Children))
	}
	if got := len(cast.FindAll(root, cast.KindOMPClause)); got != 0 {
		t.Errorf("clause nodes = %d, want 0", got)
	}
}

func TestSectionNodeBareName(t *testing.T) {
	root := mustParse(t, `
void k(double *a, int n) {
    #pragma omp target map(tofrom: a) num_threads(4)
    { a[0] = 1.0; }
}`)
	dir := cast.Directives(root)[0]
	maps := cast.FindAll(dir, cast.KindOMPClause)
	var mapClause *cast.Node
	for _, c := range maps {
		if c.Clause == omp.ClauseMap {
			mapClause = c
		}
	}
	if mapClause == nil {
		t.Fatal("no map clause node")
	}
	if mapClause.Children[0].Kind != cast.KindDeclRefExpr {
		t.Errorf("bare map arg = %s, want DeclRefExpr", mapClause.Children[0])
	}
}

func TestEmbeddedExprFallback(t *testing.T) {
	// An unresolvable section length must not break parsing.
	root := mustParse(t, `
void k(double *a, int n) {
    #pragma omp target teams distribute parallel for map(to: a[0:@@bad@@])
    for (int i = 0; i < n; i++) a[i] = 0.0;
}`)
	dir := cast.Directives(root)[0]
	if dir == nil {
		t.Fatal("directive lost")
	}
	// The malformed expression degrades to a raw DeclRefExpr. Search only
	// the clause payload (the loop body has subscripts of its own).
	clause := cast.FindAll(dir, cast.KindOMPClause)[0]
	sect := cast.FindAll(clause, cast.KindArraySubscriptExpr)
	if len(sect) != 1 {
		t.Fatalf("sections = %d", len(sect))
	}
	idx := sect[0].Children[1]
	for idx.Kind == cast.KindImplicitCastExpr { // rvalue wrapping applies here too
		idx = idx.Children[0]
	}
	if idx.Kind != cast.KindDeclRefExpr {
		t.Errorf("fallback node = %s", idx)
	}
}

func TestAnalyzerIgnoresClausePayloadCost(t *testing.T) {
	// The n*m multiply inside map(...) must not count as kernel work.
	withMap := mustParse(t, `
void k(double *a, int n, int m) {
    #pragma omp target teams distribute parallel for map(tofrom: a[0:n*m])
    for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
}`)
	withoutMap := mustParse(t, `
void k(double *a, int n, int m) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) a[i] = a[i] + 1.0;
}`)
	env := analysis.Env{"n": 100, "m": 100}
	a := analysis.AnalyzeKernel(cast.FindFunction(withMap, "k"), env, 100)
	b := analysis.AnalyzeKernel(cast.FindFunction(withoutMap, "k"), env, 100)
	if a.Flops != b.Flops || a.IntOps != b.IntOps {
		t.Errorf("clause payload leaked into op counts: %+v vs %+v", a, b)
	}
	if a.TransferBytes == 0 || b.TransferBytes != 0 {
		t.Errorf("transfer accounting wrong: %v / %v", a.TransferBytes, b.TransferBytes)
	}
}
