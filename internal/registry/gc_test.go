package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"paragraph/internal/hw"
)

// saveTestAt writes a checkpoint and rewrites its CreatedAt so retention
// ordering is deterministic regardless of clock resolution.
func saveTestAt(t *testing.T, root string, name string, at time.Time) {
	t.Helper()
	saveTest(t, root, hw.V100(), name, 1)
	rewriteManifest(t, ckptDir(root, hw.V100(), name), func(m *Manifest) {
		m.CreatedAt = at
	})
}

func gcNames(t *testing.T, root string) []string {
	t.Helper()
	cps, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, cp := range cps {
		names = append(names, cp.Manifest.Name)
	}
	sort.Strings(names)
	return names
}

func TestGCRetention(t *testing.T) {
	root := t.TempDir()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 6; i++ {
		saveTestAt(t, root, fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Hour))
	}

	// Protect stable v2 and candidate v3; keep 1 beyond protected. The
	// newest (v6) is the default-alias target, so it survives too; then one
	// KeepLast slot goes to the next-newest unprotected (v5).
	res, err := GC(root, hw.V100().Name, []string{"v2", "v3"}, GCPolicy{KeepLast: 1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(res.Removed)
	if strings.Join(res.Removed, ",") != "v1,v4" {
		t.Fatalf("Removed = %v", res.Removed)
	}
	if got := gcNames(t, root); strings.Join(got, ",") != "v2,v3,v5,v6" {
		t.Fatalf("survivors = %v", got)
	}

	// The registry still opens over the pruned root.
	if _, err := Open(root, Options{}); err != nil {
		t.Fatal(err)
	}

	// Idempotent: a second pass has nothing to remove.
	res, err = GC(root, hw.V100().Name, []string{"v2", "v3"}, GCPolicy{KeepLast: 1})
	if err != nil || len(res.Removed) != 0 {
		t.Fatalf("second pass removed %v, err %v", res.Removed, err)
	}

	// Negative KeepLast disables GC outright.
	res, err = GC(root, hw.V100().Name, nil, GCPolicy{KeepLast: -1})
	if err != nil || len(res.Removed) != 0 {
		t.Fatalf("disabled GC removed %v, err %v", res.Removed, err)
	}
}

func TestGCProtectsAlias(t *testing.T) {
	root := t.TempDir()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// A version literally named "default" is the alias target even though it
	// is the OLDEST — GC must never delete it.
	saveTestAt(t, root, "default", base)
	saveTestAt(t, root, "v2", base.Add(1*time.Hour))
	saveTestAt(t, root, "v3", base.Add(2*time.Hour))

	res, err := GC(root, hw.V100().Name, []string{"v3"}, GCPolicy{KeepLast: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Removed, ",") != "v2" {
		t.Fatalf("Removed = %v", res.Removed)
	}
	if got := gcNames(t, root); strings.Join(got, ",") != "default,v3" {
		t.Fatalf("survivors = %v", got)
	}

	// Without a literal "default", the newest version carries the alias and
	// is protected even with KeepLast 0 and no explicit protection.
	root2 := t.TempDir()
	saveTestAt(t, root2, "a", base)
	saveTestAt(t, root2, "b", base.Add(time.Hour))
	res, err = GC(root2, hw.V100().Name, nil, GCPolicy{KeepLast: 0})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Removed, ",") != "a" || strings.Join(gcNames(t, root2), ",") != "b" {
		t.Fatalf("alias-by-recency: removed %v, left %v", res.Removed, gcNames(t, root2))
	}
}

func TestGCMissingPlatform(t *testing.T) {
	res, err := GC(t.TempDir(), hw.V100().Name, nil, GCPolicy{})
	if err != nil || len(res.Removed) != 0 {
		t.Fatalf("GC on empty root = %+v, %v", res, err)
	}
}

// TestGCCrashMidPass injects removal failures at each stage and asserts the
// registry stays loadable: deletion is manifest-first, so an interrupted
// delete leaves either an intact checkpoint or a manifest-less directory
// Discover already skips.
func TestGCCrashMidPass(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	setup := func(t *testing.T) string {
		root := t.TempDir()
		for i := 1; i <= 3; i++ {
			saveTestAt(t, root, fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Hour))
		}
		return root
	}
	defer func() { removeFileHook = os.Remove }()

	t.Run("manifest removal fails", func(t *testing.T) {
		root := setup(t)
		removeFileHook = func(path string) error {
			if filepath.Base(path) == manifestFile {
				return fmt.Errorf("injected crash")
			}
			return os.Remove(path)
		}
		res, err := GC(root, hw.V100().Name, []string{"v3"}, GCPolicy{KeepLast: 0})
		if err == nil {
			t.Fatal("injected failure not surfaced")
		}
		if len(res.Removed) != 0 {
			t.Fatalf("Removed = %v", res.Removed)
		}
		// Nothing was deleted: every checkpoint still loads.
		if got := gcNames(t, root); strings.Join(got, ",") != "v1,v2,v3" {
			t.Fatalf("survivors = %v", got)
		}
		if _, err := Open(root, Options{}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("weights removal fails after manifest", func(t *testing.T) {
		root := setup(t)
		removeFileHook = func(path string) error {
			if filepath.Base(path) == weightsFile {
				return fmt.Errorf("injected crash")
			}
			return os.Remove(path)
		}
		res, err := GC(root, hw.V100().Name, []string{"v3"}, GCPolicy{KeepLast: 1})
		if err == nil {
			t.Fatal("injected failure not surfaced")
		}
		if len(res.Removed) != 0 {
			t.Fatalf("Removed = %v", res.Removed)
		}
		// v1's manifest is gone, its weights stranded — Discover must skip
		// the torn directory and Open must serve the survivors.
		if got := gcNames(t, root); strings.Join(got, ",") != "v2,v3" {
			t.Fatalf("survivors = %v", got)
		}
		if _, err := Open(root, Options{}); err != nil {
			t.Fatal(err)
		}
		// A rerun after the "crash" (hook healed) succeeds; the torn
		// directory is invisible to Discover (it could equally be a Save
		// mid-write, so GC leaves it alone) and the survivors are stable.
		removeFileHook = os.Remove
		if _, err := GC(root, hw.V100().Name, []string{"v3"}, GCPolicy{KeepLast: 1}); err != nil {
			t.Fatal(err)
		}
		if got := gcNames(t, root); strings.Join(got, ",") != "v2,v3" {
			t.Fatalf("survivors after rerun = %v", got)
		}
	})
}
