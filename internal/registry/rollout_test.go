package registry

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"paragraph/internal/hw"
)

func TestRolloutStatePersistence(t *testing.T) {
	root := t.TempDir()
	plat := hw.V100().Name

	// Absent file: no state, no error.
	st, err := LoadRollout(root, plat)
	if err != nil || st != nil {
		t.Fatalf("LoadRollout on empty root = %v, %v", st, err)
	}

	want := &RolloutState{
		Platform:  plat,
		Stable:    "v1",
		Candidate: "fb-1",
		SplitPct:  10,
		Better:    2,
	}
	want.Note(RolloutEvent{Event: "candidate", Stable: "v1", Candidate: "fb-1"})
	if err := SaveRollout(root, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRollout(root, plat)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Stable != "v1" || got.Candidate != "fb-1" || got.SplitPct != 10 || got.Better != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.History) != 1 || got.History[0].Event != "candidate" {
		t.Fatalf("history = %+v", got.History)
	}
	if got.UpdatedAt.IsZero() {
		t.Fatal("UpdatedAt not stamped")
	}

	// The state file must not confuse checkpoint discovery.
	saveTest(t, root, hw.V100(), "v1", 1)
	cps, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].Manifest.Name != "v1" {
		t.Fatalf("Discover with rollout.json present = %+v", cps)
	}
}

func TestRolloutHistoryBounded(t *testing.T) {
	st := &RolloutState{Platform: "p"}
	for i := 0; i < rolloutHistoryCap+10; i++ {
		st.Note(RolloutEvent{Event: fmt.Sprintf("e%d", i)})
	}
	if len(st.History) != rolloutHistoryCap {
		t.Fatalf("history length = %d, want %d", len(st.History), rolloutHistoryCap)
	}
	if st.History[len(st.History)-1].Event != fmt.Sprintf("e%d", rolloutHistoryCap+9) {
		t.Fatalf("history tail = %+v", st.History[len(st.History)-1])
	}
}

func TestRouteCandidateDeterministic(t *testing.T) {
	// Same key, same split → same verdict, always: the property restarts and
	// peers rely on. Also: pinned edge cases.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i*7919)
		for _, split := range []float64{0, 5, 10, 50, 99, 100} {
			a, b := RouteCandidate(key, split), RouteCandidate(key, split)
			if a != b {
				t.Fatalf("RouteCandidate(%q, %v) flapped", key, split)
			}
		}
		if RouteCandidate(key, 0) {
			t.Fatal("split 0 routed to candidate")
		}
		if !RouteCandidate(key, 100) {
			t.Fatal("split 100 routed to stable")
		}
	}
	if RouteCandidate("", 50) {
		t.Fatal("empty key routed to candidate")
	}
}

func TestRouteCandidateConvergence(t *testing.T) {
	// The measured candidate fraction over many random keys converges to the
	// configured split percentage.
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%x-%x", rng.Uint64(), rng.Uint64())
	}
	for _, split := range []float64{5, 10, 25, 50, 75, 90} {
		hits := 0
		for _, k := range keys {
			if RouteCandidate(k, split) {
				hits++
			}
		}
		got := 100 * float64(hits) / n
		if math.Abs(got-split) > 1.5 {
			t.Errorf("split %v%%: measured %.2f%% over %d keys", split, got, n)
		}
	}

	// Monotonicity: a key on the candidate at split s stays on it at s' > s.
	for _, k := range keys[:500] {
		last := false
		for _, split := range []float64{5, 10, 25, 50, 75, 90, 100} {
			cur := RouteCandidate(k, split)
			if last && !cur {
				t.Fatalf("key %q left the candidate as the split grew", k)
			}
			last = cur
		}
	}
}

func TestQualityWindow(t *testing.T) {
	w := NewQualityWindow(4)
	if corr, n, total := w.Snapshot(); !math.IsNaN(corr) || n != 0 || total != 0 {
		t.Fatalf("empty window = %v, %d, %d", corr, n, total)
	}
	// Perfectly ranked pairs.
	for i := 1; i <= 3; i++ {
		w.Add(float64(i), float64(i*10))
	}
	if corr, n, _ := w.Snapshot(); math.Abs(corr-1) > 1e-12 || n != 3 {
		t.Fatalf("perfect window = %v, %d", corr, n)
	}
	// Overflow evicts the oldest; feed reversed pairs to flip the sign.
	for i := 1; i <= 4; i++ {
		w.Add(float64(i), float64(-i))
	}
	corr, n, total := w.Snapshot()
	if n != 4 || total != 7 {
		t.Fatalf("window fill = %d, %d", n, total)
	}
	if math.Abs(corr+1) > 1e-12 {
		t.Fatalf("reversed window corr = %v, want -1", corr)
	}
}

// TestHysteresisTransitions walks the promote/rollback state machine through
// its full transition diagram with a scripted evaluation sequence.
func TestHysteresisTransitions(t *testing.T) {
	cfg := HysteresisConfig{
		MinSamples:     10,
		PromoteMargin:  0.02,
		RollbackMargin: 0.10,
		PromoteAfter:   3,
		RollbackAfter:  2,
	}
	type step struct {
		name           string
		stable, cand   float64
		stableN, candN int
		want           Decision
		better, worse  int // expected counters after the step
	}
	steps := []step{
		// Insufficient samples: nothing moves.
		{"cand window cold", 0.9, 0.95, 50, 3, Hold, 0, 0},
		{"stable window cold", 0.9, 0.95, 3, 50, Hold, 0, 0},
		// Better streak building toward promote...
		{"better 1", 0.90, 0.95, 50, 50, Hold, 1, 0},
		{"better 2 (within margin)", 0.90, 0.89, 50, 50, Hold, 2, 0},
		// ...broken by a clear regression (counters swap).
		{"worse 1 resets better", 0.90, 0.70, 50, 50, Hold, 0, 1},
		// Dead band resets both: streaks must be consecutive.
		{"dead band", 0.90, 0.85, 50, 50, Hold, 0, 0},
		// Full promote streak.
		{"better 1 again", 0.90, 0.91, 50, 50, Hold, 1, 0},
		{"better 2 again", 0.90, 0.92, 50, 50, Hold, 2, 0},
		{"promote", 0.90, 0.93, 50, 50, Promote, 0, 0},
		// Full rollback streak (RollbackAfter = 2).
		{"worse 1", 0.90, 0.60, 50, 50, Hold, 0, 1},
		{"rollback", 0.90, 0.60, 50, 50, Rollback, 0, 0},
		// NaN semantics: candidate with no ranking signal is a regression,
		// stable with none cannot hold a candidate back, both NaN holds.
		{"cand NaN", 0.90, math.NaN(), 50, 50, Hold, 0, 1},
		{"cand NaN rollback", 0.90, math.NaN(), 50, 50, Rollback, 0, 0},
		{"stable NaN", math.NaN(), 0.5, 50, 50, Hold, 1, 0},
		{"both NaN", math.NaN(), math.NaN(), 50, 50, Hold, 1, 0},
	}
	st := &RolloutState{Platform: "p", Stable: "v1", Candidate: "fb-1"}
	for _, s := range steps {
		got := Observe(st, s.stable, s.cand, s.stableN, s.candN, cfg)
		if got != s.want || st.Better != s.better || st.Worse != s.worse {
			t.Fatalf("%s: decision=%v better=%d worse=%d, want %v/%d/%d",
				s.name, got, st.Better, st.Worse, s.want, s.better, s.worse)
		}
	}

	// No candidate: Observe never acts, whatever the numbers say.
	idle := &RolloutState{Platform: "p", Stable: "v1"}
	for i := 0; i < 10; i++ {
		if got := Observe(idle, 0.1, 0.99, 100, 100, cfg); got != Hold {
			t.Fatalf("no-candidate Observe = %v", got)
		}
	}
	if idle.Better != 0 || idle.Worse != 0 {
		t.Fatalf("no-candidate counters moved: %+v", idle)
	}
}

func TestHysteresisDefaults(t *testing.T) {
	st := &RolloutState{Platform: "p", Stable: "v1", Candidate: "c"}
	// Defaults: MinSamples 30, PromoteAfter 3.
	if got := Observe(st, 0.5, 0.9, 29, 29, HysteresisConfig{}); got != Hold || st.Better != 0 {
		t.Fatalf("below default MinSamples: %v, better=%d", got, st.Better)
	}
	for i := 0; i < 2; i++ {
		if got := Observe(st, 0.5, 0.9, 30, 30, HysteresisConfig{}); got != Hold {
			t.Fatalf("step %d = %v", i, got)
		}
	}
	if got := Observe(st, 0.5, 0.9, 30, 30, HysteresisConfig{}); got != Promote {
		t.Fatalf("third better eval = %v, want Promote", got)
	}
	if s := Promote.String() + Rollback.String() + Hold.String(); s != "promoterollbackhold" {
		t.Fatalf("Decision strings = %q", s)
	}
}
