// Package registry persists trained cost models as versioned checkpoints
// and serves them back without retraining. A checkpoint is a directory
// holding the model weights (gnn.Model.Save) next to a JSON manifest that
// records everything needed to reconstruct the serving stack around them:
// the gnn.Config architecture, the platform, the representation level, the
// training-time feature/target scalers, a weights checksum, and training
// stats. The layout under a registry root is
//
//	<root>/<platform-slug>/<version>/manifest.json
//	<root>/<platform-slug>/<version>/weights.json
//
// so one platform can carry several named versions (training scales,
// representation levels, A/B candidates) side by side; each platform gets a
// default alias (a version literally named "default", else the newest).
//
// A Registry opened over such a root verifies every checkpoint eagerly
// (config/weights mismatches and checksum drift fail Open, not a later
// request), then keeps at most MaxLoaded models resident: entries are
// loaded on first use and evicted least-recently-used, so a fleet of
// checkpoints can be served from bounded memory. Entry implements the
// serving layer's BatchPredictor, which is how cmd/serve plugs checkpoints
// straight into its batcher without knowing about files.
package registry

import (
	"container/list"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
)

const (
	// FormatVersion is the manifest schema version this package writes.
	FormatVersion = 1

	manifestFile = "manifest.json"
	weightsFile  = "weights.json"
)

// Scalers carries the training-time normalization a served model cannot
// predict without (dataset.Prepared's scaler set).
type Scalers struct {
	Target dataset.Scaler `json:"target"` // log(runtime µs) → [0,1]
	Team   dataset.Scaler `json:"team"`
	Thread dataset.Scaler `json:"thread"`
	WScale float64        `json:"w_scale"`
}

// TrainInfo records how a checkpoint was produced, for /v1/models and ops.
type TrainInfo struct {
	Scale        string  `json:"scale,omitempty"`
	Epochs       int     `json:"epochs"`
	TrainSamples int     `json:"train_samples"`
	ValSamples   int     `json:"val_samples"`
	FinalValRMSE float64 `json:"final_val_rmse"`
}

// Manifest is the JSON sidecar of one checkpoint.
type Manifest struct {
	FormatVersion int        `json:"format_version"`
	Platform      string     `json:"platform"`
	Name          string     `json:"name"`  // version name within the platform
	Level         string     `json:"level"` // paragraph.Level.String()
	CreatedAt     time.Time  `json:"created_at"`
	Config        gnn.Config `json:"config"`
	Params        int        `json:"params"` // scalar parameter count
	Checksum      string     `json:"weights_checksum"`
	Scalers       Scalers    `json:"scalers"`
	Train         TrainInfo  `json:"train"`
}

// ParseLevel inverts paragraph.Level.String for manifest round-trips.
func ParseLevel(s string) (paragraph.Level, error) {
	for _, l := range []paragraph.Level{
		paragraph.LevelRawAST, paragraph.LevelAugmentedAST, paragraph.LevelParaGraph,
	} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("registry: unknown representation level %q", s)
}

// CheckName validates a checkpoint version name without touching disk, so
// CLIs can reject a bad -save-name before spending a training run on it.
func CheckName(name string) error { return validName(name) }

// validName guards version names (and platform slugs) so the registry
// layout stays one directory per checkpoint and names survive a filesystem
// round-trip.
func validName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("registry: invalid checkpoint name %q", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("registry: checkpoint name %q: only [a-zA-Z0-9._-] allowed", name)
		}
	}
	return nil
}

// PlatformSlug renders a machine name as a directory name
// ("NVIDIA V100 (GPU)" → "nvidia-v100-gpu"). The manifest keeps the real
// name; the slug only shapes the layout.
func PlatformSlug(name string) string {
	var b strings.Builder
	lastDash := true // suppress leading dash
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// Save writes one checkpoint under root and returns its directory. The
// weights land first (via a temp file + rename so a crash never leaves a
// manifest pointing at half-written weights), then the manifest makes the
// checkpoint visible to Discover.
func Save(root string, m hw.Machine, name string, level paragraph.Level,
	model *gnn.Model, prep *dataset.Prepared, info TrainInfo) (string, error) {
	if err := validName(name); err != nil {
		return "", err
	}
	if model == nil || prep == nil {
		return "", fmt.Errorf("registry: model and prepared dataset required")
	}
	dir := filepath.Join(root, PlatformSlug(m.Name), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("registry: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, weightsFile), func(f *os.File) error {
		return model.Save(f)
	}); err != nil {
		return "", fmt.Errorf("registry: writing weights: %w", err)
	}
	man := Manifest{
		FormatVersion: FormatVersion,
		Platform:      m.Name,
		Name:          name,
		Level:         level.String(),
		CreatedAt:     time.Now().UTC(),
		Config:        model.Config(),
		Params:        model.NumParams(),
		Checksum:      model.Checksum(),
		Scalers: Scalers{
			Target: prep.TargetScaler,
			Team:   prep.TeamScaler,
			Thread: prep.ThreadScaler,
			WScale: prep.WScale,
		},
		Train: info,
	}
	err := writeFileAtomic(filepath.Join(dir, manifestFile), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		return enc.Encode(man)
	})
	if err != nil {
		return "", fmt.Errorf("registry: writing manifest: %w", err)
	}
	return dir, nil
}

// writeFileAtomic writes via a temp file in the target directory and
// renames it into place.
func writeFileAtomic(path string, write func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// Checkpoint is one discovered (not yet loaded) checkpoint.
type Checkpoint struct {
	Dir      string
	Manifest Manifest
}

// Discover scans root for checkpoints (any <root>/*/*/manifest.json). A
// directory without a manifest is skipped silently — it may be a checkpoint
// mid-write — but a manifest that fails to parse is an error.
func Discover(root string) ([]Checkpoint, error) {
	platDirs, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var cps []Checkpoint
	for _, pd := range platDirs {
		if !pd.IsDir() {
			continue
		}
		verDirs, err := os.ReadDir(filepath.Join(root, pd.Name()))
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		for _, vd := range verDirs {
			if !vd.IsDir() {
				continue
			}
			dir := filepath.Join(root, pd.Name(), vd.Name())
			raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("registry: %w", err)
			}
			var man Manifest
			if err := json.Unmarshal(raw, &man); err != nil {
				return nil, fmt.Errorf("registry: %s: bad manifest: %w", dir, err)
			}
			if man.FormatVersion != FormatVersion {
				return nil, fmt.Errorf("registry: %s: unsupported manifest format %d", dir, man.FormatVersion)
			}
			cps = append(cps, Checkpoint{Dir: dir, Manifest: man})
		}
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].Manifest.Platform != cps[j].Manifest.Platform {
			return cps[i].Manifest.Platform < cps[j].Manifest.Platform
		}
		return cps[i].Manifest.Name < cps[j].Manifest.Name
	})
	return cps, nil
}

// Options tunes a Registry.
type Options struct {
	// MaxLoaded bounds the models resident in memory; least-recently-used
	// entries beyond it are evicted (and transparently reloaded from disk
	// on next use). <= 0 defaults to 8.
	MaxLoaded int

	// Float64Inference opts loaded models out of the float32
	// inference-weights fast path. By default every model the registry
	// loads serves predictions through weights converted to float32 at
	// load time (checkpoints on disk stay float64, and the checksum is
	// verified against the float64 values before conversion) — agreement
	// with the float64 reference is within 1e-4 relative error, the
	// engine's gated tolerance. Set this when exact float64 serving
	// arithmetic is required.
	Float64Inference bool
}

// Registry serves the checkpoints under one root directory.
type Registry struct {
	root      string
	maxLoaded int
	f64       bool

	mu       sync.Mutex
	entries  map[string]*Entry // platform + "\x00" + name
	byPlat   map[string][]*Entry
	defaults map[string]*Entry
	loaded   *list.List // of *Entry; front = most recently used

	loads, evictions uint64
}

// Entry is one registered checkpoint. It implements the serving layer's
// BatchPredictor: PredictBatch loads the model from disk on first use (and
// after eviction) and delegates to it, so callers can hold Entries for
// every checkpoint while only MaxLoaded models occupy memory.
type Entry struct {
	reg      *Registry
	Dir      string
	Manifest Manifest
	Machine  hw.Machine
	Level    paragraph.Level
	// Prep carries the manifest's scalers in the shape the advisor wants
	// (Train/Val are empty; serving never touches them).
	Prep *dataset.Prepared

	loadMu sync.Mutex
	model  *gnn.Model
	elem   *list.Element
	loads  uint64
}

// Open discovers, validates and indexes every checkpoint under root. Each
// model is loaded once up front — a config/weights mismatch or checksum
// drift fails here, not mid-request — then the resident set is trimmed to
// MaxLoaded.
func Open(root string, opts Options) (*Registry, error) {
	if opts.MaxLoaded <= 0 {
		opts.MaxLoaded = 8
	}
	cps, err := Discover(root)
	if err != nil {
		return nil, err
	}
	if len(cps) == 0 {
		return nil, fmt.Errorf("registry: no checkpoints under %s", root)
	}
	r := &Registry{
		root:      root,
		maxLoaded: opts.MaxLoaded,
		f64:       opts.Float64Inference,
		entries:   map[string]*Entry{},
		byPlat:    map[string][]*Entry{},
		defaults:  map[string]*Entry{},
		loaded:    list.New(),
	}
	for _, cp := range cps {
		e, err := r.newEntry(cp)
		if err != nil {
			return nil, err
		}
		key := entryKey(e.Manifest.Platform, e.Manifest.Name)
		if _, dup := r.entries[key]; dup {
			return nil, fmt.Errorf("registry: duplicate checkpoint %s/%s", e.Manifest.Platform, e.Manifest.Name)
		}
		r.entries[key] = e
		r.byPlat[e.Manifest.Platform] = append(r.byPlat[e.Manifest.Platform], e)
		// Verify now: Open fails fast on broken checkpoints.
		if _, err := e.acquire(); err != nil {
			return nil, err
		}
	}
	for plat, es := range r.byPlat {
		r.defaults[plat] = pickDefault(es)
	}
	return r, nil
}

func entryKey(platform, name string) string { return platform + "\x00" + name }

// newEntry validates a discovered checkpoint's manifest and builds its
// (unloaded) entry.
func (r *Registry) newEntry(cp Checkpoint) (*Entry, error) {
	man := cp.Manifest
	machine, err := hw.ByName(man.Platform)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %w", cp.Dir, err)
	}
	level, err := ParseLevel(man.Level)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %w", cp.Dir, err)
	}
	if err := validName(man.Name); err != nil {
		return nil, fmt.Errorf("registry: %s: %w", cp.Dir, err)
	}
	if man.Scalers.WScale <= 0 {
		return nil, fmt.Errorf("registry: %s: manifest w_scale %g must be positive", cp.Dir, man.Scalers.WScale)
	}
	return &Entry{
		reg:      r,
		Dir:      cp.Dir,
		Manifest: man,
		Machine:  machine,
		Level:    level,
		Prep: &dataset.Prepared{
			TargetScaler: man.Scalers.Target,
			TeamScaler:   man.Scalers.Team,
			ThreadScaler: man.Scalers.Thread,
			WScale:       man.Scalers.WScale,
		},
	}, nil
}

// pickDefault resolves a platform's default alias: a version literally
// named "default" wins, else the newest CreatedAt (name as tiebreak).
func pickDefault(es []*Entry) *Entry {
	best := es[0]
	for _, e := range es[1:] {
		if best.Manifest.Name == "default" {
			break
		}
		switch {
		case e.Manifest.Name == "default":
			best = e
		case e.Manifest.CreatedAt.After(best.Manifest.CreatedAt):
			best = e
		case e.Manifest.CreatedAt.Equal(best.Manifest.CreatedAt) && e.Manifest.Name < best.Manifest.Name:
			best = e
		}
	}
	return best
}

// Lookup resolves a (platform, version) pair; an empty or "default" name
// follows the platform's default alias.
func (r *Registry) Lookup(platform, name string) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" || name == "default" {
		if e, ok := r.defaults[platform]; ok {
			return e, nil
		}
		return nil, fmt.Errorf("registry: no checkpoints for platform %q", platform)
	}
	if e, ok := r.entries[entryKey(platform, name)]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("registry: no checkpoint %s/%s", platform, name)
}

// Default reports whether e is its platform's default alias.
func (r *Registry) Default(e *Entry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.defaults[e.Manifest.Platform] == e
}

// Platforms lists the platforms with at least one checkpoint, sorted.
func (r *Registry) Platforms() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byPlat))
	for p := range r.byPlat {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Entries lists every checkpoint, sorted by (platform, name).
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Entry
	for _, es := range r.byPlat {
		out = append(out, es...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Manifest.Platform != out[j].Manifest.Platform {
			return out[i].Manifest.Platform < out[j].Manifest.Platform
		}
		return out[i].Manifest.Name < out[j].Manifest.Name
	})
	return out
}

// Stats is the registry's counter snapshot.
type Stats struct {
	Checkpoints int    `json:"checkpoints"`
	Loaded      int    `json:"loaded"`
	MaxLoaded   int    `json:"max_loaded"`
	Loads       uint64 `json:"loads"`     // disk loads, including Open's verification pass
	Evictions   uint64 `json:"evictions"` // models dropped by the LRU bound
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Checkpoints: len(r.entries),
		Loaded:      r.loaded.Len(),
		MaxLoaded:   r.maxLoaded,
		Loads:       r.loads,
		Evictions:   r.evictions,
	}
}

// PredictBatch implements the serving layer's BatchPredictor over the
// lazily-loaded model. A load failure (checkpoint deleted or corrupted
// under a live registry) yields NaN predictions; the serving layer turns
// NaN rankings into request errors, so the process stays up.
func (e *Entry) PredictBatch(samples []*gnn.Sample) []float64 {
	m, err := e.acquire()
	if err != nil {
		out := make([]float64, len(samples))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	return m.PredictBatch(samples)
}

// Loaded reports whether the entry's model is currently resident.
func (e *Entry) Loaded() bool {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	return e.model != nil
}

// Loads returns how many times this entry was loaded from disk.
func (e *Entry) Loads() uint64 {
	e.reg.mu.Lock()
	defer e.reg.mu.Unlock()
	return e.loads
}

// acquire returns the entry's model, loading it from disk (and evicting the
// registry's least-recently-used entry beyond MaxLoaded) when needed.
func (e *Entry) acquire() (*gnn.Model, error) {
	r := e.reg
	r.mu.Lock()
	if e.model != nil {
		r.loaded.MoveToFront(e.elem)
		m := e.model
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	// Load outside the registry lock (other entries keep serving); the
	// per-entry mutex collapses concurrent loads of the same checkpoint.
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	r.mu.Lock()
	if e.model != nil {
		r.loaded.MoveToFront(e.elem)
		m := e.model
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	m, err := e.loadModel()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	e.model = m
	e.elem = r.loaded.PushFront(e)
	e.loads++
	r.loads++
	for r.loaded.Len() > r.maxLoaded {
		victim := r.loaded.Remove(r.loaded.Back()).(*Entry)
		victim.model = nil
		victim.elem = nil
		r.evictions++
	}
	r.mu.Unlock()
	return m, nil
}

// loadModel reads and verifies the weights file against the manifest, then
// builds the model's derived inference weights (precomputed attention
// projections and — unless the registry was opened with Float64Inference —
// the converted float32 weight set) so the first request served pays no
// one-time conversion cost.
func (e *Entry) loadModel() (*gnn.Model, error) {
	f, err := os.Open(filepath.Join(e.Dir, weightsFile))
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %w", e.Dir, err)
	}
	defer f.Close()
	m := gnn.NewModel(e.Manifest.Config)
	if err := m.Load(f); err != nil {
		return nil, fmt.Errorf("registry: %s: config/weights mismatch: %w", e.Dir, err)
	}
	if e.Manifest.Checksum != "" && m.Checksum() != e.Manifest.Checksum {
		return nil, fmt.Errorf("registry: %s: weights checksum mismatch (manifest %.12s…, file %.12s…)",
			e.Dir, e.Manifest.Checksum, m.Checksum())
	}
	m.SetFloat32Inference(!e.reg.f64)
	m.PrecomputeInference()
	return m, nil
}
