package registry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paragraph/internal/dataset"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
)

func testPrep() *dataset.Prepared {
	return &dataset.Prepared{
		TargetScaler: dataset.Scaler{Min: math.Log(10), Max: math.Log(1e6)},
		TeamScaler:   dataset.Scaler{Min: 0, Max: 256},
		ThreadScaler: dataset.Scaler{Min: 1, Max: 256},
		WScale:       10,
	}
}

func newTestModel(seed int64) *gnn.Model {
	return gnn.NewModel(gnn.Config{
		Hidden: 8, FeatHidden: 8, Layers: 1,
		Relations: int(paragraph.NumEdgeTypes), Seed: seed,
	})
}

// testSample builds one model-ready sample so predictions can be compared
// between an original model and its registry round-trip.
func testSample(t *testing.T) *gnn.Sample {
	t.Helper()
	src := `
void k(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < 1000; i++) {
        a[i] = a[i] * 2.0;
    }
}`
	g, err := paragraph.BuildKernel(src, paragraph.Options{
		Level:   paragraph.LevelParaGraph,
		Threads: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
	if err != nil {
		t.Fatal(err)
	}
	eg.WScale = 10
	return &gnn.Sample{G: eg, Feats: [2]float64{0.25, 0.5}}
}

// saveTest writes one checkpoint and returns its model.
func saveTest(t *testing.T, root string, m hw.Machine, name string, seed int64) *gnn.Model {
	t.Helper()
	model := newTestModel(seed)
	if _, err := Save(root, m, name, paragraph.LevelParaGraph, model, testPrep(), TrainInfo{
		Scale: "tiny", Epochs: 3, TrainSamples: 90, ValSamples: 10, FinalValRMSE: 0.12,
	}); err != nil {
		t.Fatal(err)
	}
	return model
}

func TestSaveOpenRoundTrip(t *testing.T) {
	root := t.TempDir()
	model := saveTest(t, root, hw.V100(), "default", 7)

	reg, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Lookup(hw.V100().Name, "") // default alias
	if err != nil {
		t.Fatal(err)
	}
	man := e.Manifest
	if man.Platform != hw.V100().Name || man.Name != "default" || man.Level != "ParaGraph" {
		t.Errorf("manifest identity = %+v", man)
	}
	if man.Params != model.NumParams() || man.Checksum != model.Checksum() {
		t.Errorf("manifest params/checksum = %d/%q, want %d/%q",
			man.Params, man.Checksum, model.NumParams(), model.Checksum())
	}
	if man.Train.Epochs != 3 || man.Train.FinalValRMSE != 0.12 {
		t.Errorf("train info = %+v", man.Train)
	}
	if e.Prep.WScale != 10 || e.Prep.TargetScaler != testPrep().TargetScaler {
		t.Errorf("restored scalers = %+v", e.Prep)
	}

	// Predictions through the round-tripped entry are bit-identical to the
	// same weights served the same way (registry entries default to the
	// float32 inference path, so the reference model must too).
	s := testSample(t)
	model.SetFloat32Inference(true)
	want := model.PredictBatch([]*gnn.Sample{s})[0]
	got := e.PredictBatch([]*gnn.Sample{s})[0]
	if got != want {
		t.Errorf("round-trip prediction %v != original %v", got, want)
	}
}

// TestFloat64InferenceOptOut pins the Options escape hatch: a registry
// opened with Float64Inference serves bit-identical predictions to a plain
// float64 model, while the default (float32) registry agrees only within
// the engine's gated tolerance.
func TestFloat64InferenceOptOut(t *testing.T) {
	root := t.TempDir()
	model := saveTest(t, root, hw.V100(), "default", 7)
	s := testSample(t)
	want := model.PredictBatch([]*gnn.Sample{s})[0]

	reg, err := Open(root, Options{Float64Inference: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Lookup(hw.V100().Name, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.PredictBatch([]*gnn.Sample{s})[0]; got != want {
		t.Errorf("float64 registry prediction %v != model %v", got, want)
	}

	reg32, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e32, err := reg32.Lookup(hw.V100().Name, "")
	if err != nil {
		t.Fatal(err)
	}
	got := e32.PredictBatch([]*gnn.Sample{s})[0]
	if rel := math.Abs(got-want) / math.Max(1, math.Abs(want)); rel > 1e-4 {
		t.Errorf("float32 registry prediction %v vs float64 %v (rel err %v)", got, want, rel)
	}
}

// rewriteManifest loads, mutates and rewrites one checkpoint's manifest.
func rewriteManifest(t *testing.T, dir string, mutate func(*Manifest)) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	mutate(&man)
	out, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func ckptDir(root string, m hw.Machine, name string) string {
	return filepath.Join(root, PlatformSlug(m.Name), name)
}

func TestOpenRejectsConfigMismatch(t *testing.T) {
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "default", 7)
	rewriteManifest(t, ckptDir(root, hw.V100(), "default"), func(man *Manifest) {
		man.Config.Hidden += 8 // architecture no longer matches the weights
	})
	if _, err := Open(root, Options{}); err == nil {
		t.Fatal("Open accepted a manifest whose config mismatches the weights")
	} else if !strings.Contains(err.Error(), "config/weights mismatch") {
		t.Errorf("error = %v, want config/weights mismatch", err)
	}
}

func TestOpenRejectsChecksumDrift(t *testing.T) {
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "default", 7)
	// Overwrite the weights with a same-architecture model trained (seeded)
	// differently: shapes match, content does not.
	f, err := os.Create(filepath.Join(ckptDir(root, hw.V100(), "default"), "weights.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := newTestModel(99).Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(root, Options{}); err == nil {
		t.Fatal("Open accepted swapped weights")
	} else if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("error = %v, want checksum mismatch", err)
	}
}

func TestOpenRejectsBadManifests(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"unknown platform", func(m *Manifest) { m.Platform = "Cray-1" }},
		{"unknown level", func(m *Manifest) { m.Level = "MegaGraph" }},
		{"bad version name", func(m *Manifest) { m.Name = "../escape" }},
		{"bad wscale", func(m *Manifest) { m.Scalers.WScale = 0 }},
		{"future format", func(m *Manifest) { m.FormatVersion = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			saveTest(t, root, hw.V100(), "default", 7)
			rewriteManifest(t, ckptDir(root, hw.V100(), "default"), tc.mutate)
			if _, err := Open(root, Options{}); err == nil {
				t.Error("Open accepted a broken manifest")
			}
		})
	}
}

func TestDefaultAlias(t *testing.T) {
	// An entry literally named "default" wins the alias.
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "aaa", 1)
	saveTest(t, root, hw.V100(), "default", 2)
	saveTest(t, root, hw.V100(), "zzz", 3)
	reg, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Lookup(hw.V100().Name, "default")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manifest.Name != "default" || !reg.Default(e) {
		t.Errorf("default alias = %q", e.Manifest.Name)
	}

	// Without one, the newest checkpoint wins.
	root2 := t.TempDir()
	saveTest(t, root2, hw.V100(), "v1", 1)
	saveTest(t, root2, hw.V100(), "v2", 2) // saved later → newer CreatedAt
	reg2, err := Open(root2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg2.Lookup(hw.V100().Name, "")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Manifest.Name != "v2" {
		t.Errorf("newest-wins default = %q, want v2", e2.Manifest.Name)
	}
}

func TestLookupErrors(t *testing.T) {
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "default", 7)
	reg, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("IBM POWER9 (CPU)", ""); err == nil {
		t.Error("lookup of platform without checkpoints succeeded")
	}
	if _, err := reg.Lookup(hw.V100().Name, "nope"); err == nil {
		t.Error("lookup of unknown version succeeded")
	}
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("Open of empty root succeeded")
	}
}

func TestEvictionAndReload(t *testing.T) {
	root := t.TempDir()
	ma := saveTest(t, root, hw.V100(), "a", 1)
	mb := saveTest(t, root, hw.V100(), "b", 2)
	reg, err := Open(root, Options{MaxLoaded: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := reg.Stats(); st.Loaded != 1 || st.Checkpoints != 2 {
		t.Fatalf("after Open: %+v, want 1 of 2 loaded", st)
	}

	ea, err := reg.Lookup(hw.V100().Name, "a")
	if err != nil {
		t.Fatal(err)
	}
	eb, err := reg.Lookup(hw.V100().Name, "b")
	if err != nil {
		t.Fatal(err)
	}
	s := testSample(t)
	// Entries serve the float32 inference path; match it on the references.
	ma.SetFloat32Inference(true)
	mb.SetFloat32Inference(true)
	wantA := ma.PredictBatch([]*gnn.Sample{s})[0]
	wantB := mb.PredictBatch([]*gnn.Sample{s})[0]

	// Ping-pong between the two entries: each use evicts the other, and
	// predictions stay correct across reloads.
	for i := 0; i < 3; i++ {
		if got := ea.PredictBatch([]*gnn.Sample{s})[0]; got != wantA {
			t.Fatalf("iteration %d: a predicted %v, want %v", i, got, wantA)
		}
		if got := eb.PredictBatch([]*gnn.Sample{s})[0]; got != wantB {
			t.Fatalf("iteration %d: b predicted %v, want %v", i, got, wantB)
		}
	}
	st := reg.Stats()
	if st.Loaded != 1 {
		t.Errorf("loaded = %d, want 1", st.Loaded)
	}
	if st.Evictions < 5 {
		t.Errorf("evictions = %d, want >= 5", st.Evictions)
	}
	if ea.Loads() < 3 || eb.Loads() < 3 {
		t.Errorf("loads = %d/%d, want >= 3 each", ea.Loads(), eb.Loads())
	}
	if ea.Loaded() && eb.Loaded() {
		t.Error("both entries resident despite MaxLoaded=1")
	}
}

func TestPredictBatchAfterCheckpointVanishes(t *testing.T) {
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "a", 1)
	saveTest(t, root, hw.V100(), "b", 2)
	reg, err := Open(root, Options{MaxLoaded: 1})
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := reg.Lookup(hw.V100().Name, "a")
	eb, _ := reg.Lookup(hw.V100().Name, "b")
	s := testSample(t)
	// Force a to be the evicted one, then delete its weights.
	eb.PredictBatch([]*gnn.Sample{s})
	if ea.Loaded() {
		t.Fatal("a still resident; test setup wrong")
	}
	if err := os.Remove(filepath.Join(ckptDir(root, hw.V100(), "a"), "weights.json")); err != nil {
		t.Fatal(err)
	}
	out := ea.PredictBatch([]*gnn.Sample{s})
	if len(out) != 1 || !math.IsNaN(out[0]) {
		t.Errorf("vanished checkpoint predicted %v, want NaN", out)
	}
}

func TestDiscoverSkipsPartialDirs(t *testing.T) {
	root := t.TempDir()
	saveTest(t, root, hw.V100(), "default", 7)
	// A version directory without a manifest (mid-write) is skipped.
	if err := os.MkdirAll(filepath.Join(root, PlatformSlug(hw.V100().Name), "partial"), 0o755); err != nil {
		t.Fatal(err)
	}
	cps, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 {
		t.Errorf("discovered %d checkpoints, want 1", len(cps))
	}
}

func TestSaveRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", ".", "..", "a/b", "sp ace", "semi;colon"} {
		if _, err := Save(t.TempDir(), hw.V100(), name, paragraph.LevelParaGraph,
			newTestModel(1), testPrep(), TrainInfo{}); err == nil {
			t.Errorf("Save accepted name %q", name)
		}
	}
}

func TestPlatformSlug(t *testing.T) {
	cases := map[string]string{
		"NVIDIA V100 (GPU)":   "nvidia-v100-gpu",
		"IBM POWER9 (CPU)":    "ibm-power9-cpu",
		"AMD EPYC 7401 (CPU)": "amd-epyc-7401-cpu",
	}
	for in, want := range cases {
		if got := PlatformSlug(in); got != want {
			t.Errorf("PlatformSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []paragraph.Level{
		paragraph.LevelRawAST, paragraph.LevelAugmentedAST, paragraph.LevelParaGraph,
	} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
