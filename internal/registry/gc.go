package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint GC: without retention, every retrain leaves another version
// directory behind and -save-dir grows forever. GC prunes a platform's
// superseded versions while never touching the versions that matter: the
// rollout's stable and candidate, anything the caller pins, the "default"
// alias, and the newest KeepLast survivors beyond those.
//
// Deletion order is chosen for crash safety: the manifest goes first, so a
// checkpoint interrupted mid-delete is exactly a "directory without a
// manifest", which Discover already skips silently and Open never sees. A
// crash can strand a weights file, never break the registry.

// removeFileHook is swapped by tests to inject removal failures and observe
// crash-mid-GC behavior. Production value: os.Remove.
var removeFileHook = os.Remove

// GCPolicy tunes retention.
type GCPolicy struct {
	// KeepLast is how many non-protected versions (newest first by
	// CreatedAt) survive beyond the protected set. Negative disables GC.
	KeepLast int
}

// GCResult reports what one GC pass did.
type GCResult struct {
	Removed []string // version names deleted
	Kept    []string // version names retained (protected or within KeepLast)
}

// GC prunes platform's checkpoint versions under root. protected names are
// never removed (pass the rollout's stable and candidate); the "default"
// alias — a version literally named "default", else the platform's newest —
// is always protected as well. Remaining versions are kept newest-first up
// to pol.KeepLast, and the rest are deleted manifest-first.
//
// On a deletion error GC stops and returns the partial result with the
// error; everything already removed stays removed, everything else is
// untouched and still loadable.
func GC(root, platform string, protected []string, pol GCPolicy) (GCResult, error) {
	var res GCResult
	if pol.KeepLast < 0 {
		return res, nil
	}
	platDir := filepath.Join(root, PlatformSlug(platform))
	ents, err := os.ReadDir(platDir)
	if os.IsNotExist(err) {
		return res, nil
	}
	if err != nil {
		return res, fmt.Errorf("registry: gc: %w", err)
	}

	keep := map[string]bool{"default": true}
	for _, name := range protected {
		if name != "" {
			keep[name] = true
		}
	}

	// Collect the platform's real checkpoints (directories with a parseable
	// manifest); anything else in the platform dir is not GC's business.
	var cps []Checkpoint
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(platDir, e.Name())
		raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
		if err != nil {
			continue
		}
		var man Manifest
		if json.Unmarshal(raw, &man) != nil {
			continue
		}
		cps = append(cps, Checkpoint{Dir: dir, Manifest: man})
	}
	if len(cps) == 0 {
		return res, nil
	}

	// The alias target is protected even when nothing is named "default":
	// deleting the version the default alias currently resolves to would
	// change what unpinned clients get.
	newest := cps[0]
	for _, cp := range cps[1:] {
		if cp.Manifest.Name == "default" {
			newest = cp
			break
		}
		if newest.Manifest.Name != "default" &&
			(cp.Manifest.CreatedAt.After(newest.Manifest.CreatedAt) ||
				(cp.Manifest.CreatedAt.Equal(newest.Manifest.CreatedAt) && cp.Manifest.Name < newest.Manifest.Name)) {
			newest = cp
		}
	}
	keep[newest.Manifest.Name] = true

	// Sort newest first; retain KeepLast beyond the protected set.
	sort.Slice(cps, func(i, j int) bool {
		if !cps[i].Manifest.CreatedAt.Equal(cps[j].Manifest.CreatedAt) {
			return cps[i].Manifest.CreatedAt.After(cps[j].Manifest.CreatedAt)
		}
		return cps[i].Manifest.Name > cps[j].Manifest.Name
	})
	spared := 0
	var victims []Checkpoint
	for _, cp := range cps {
		if keep[cp.Manifest.Name] {
			res.Kept = append(res.Kept, cp.Manifest.Name)
			continue
		}
		if spared < pol.KeepLast {
			spared++
			res.Kept = append(res.Kept, cp.Manifest.Name)
			continue
		}
		victims = append(victims, cp)
	}

	for _, cp := range victims {
		// Manifest first: a crash (or injected failure) after this point
		// leaves a manifest-less directory that Discover skips.
		if err := removeFileHook(filepath.Join(cp.Dir, manifestFile)); err != nil {
			return res, fmt.Errorf("registry: gc %s: %w", cp.Dir, err)
		}
		if err := removeFileHook(filepath.Join(cp.Dir, weightsFile)); err != nil {
			return res, fmt.Errorf("registry: gc %s: %w", cp.Dir, err)
		}
		// Best-effort directory removal: stray temp files keep the empty
		// shell around, which is harmless to Discover.
		os.Remove(cp.Dir)
		res.Removed = append(res.Removed, cp.Manifest.Name)
	}
	return res, nil
}
