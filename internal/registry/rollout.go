package registry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"paragraph/internal/metrics"
)

// This file makes the registry a lifecycle manager, not just a loader: a
// platform's checkpoints gain rollout *state* — which version is stable,
// which (if any) is the canary candidate, what fraction of unpinned traffic
// the candidate receives — plus the machinery that moves that state:
// deterministic hash-based A/B routing, online rank-correlation quality
// windows, and a promote/rollback hysteresis so one noisy evaluation never
// flips a deployment.

const rolloutFile = "rollout.json"

// RolloutState is the persisted rollout position of one platform, stored as
// <root>/<platform-slug>/rollout.json beside the version directories (it is
// a file, so Discover's directory scan never mistakes it for a checkpoint).
type RolloutState struct {
	FormatVersion int     `json:"format_version"`
	Platform      string  `json:"platform"`
	Stable        string  `json:"stable"`              // version serving the default alias
	Candidate     string  `json:"candidate,omitempty"` // canary version, "" when none
	SplitPct      float64 `json:"split_pct"`           // % of unpinned traffic routed to the candidate

	// Hysteresis position (consecutive better/worse evaluations) survives
	// restarts so a canary cannot dodge rollback by bouncing the process.
	Better int `json:"better,omitempty"`
	Worse  int `json:"worse,omitempty"`

	Promotions uint64    `json:"promotions,omitempty"`
	Rollbacks  uint64    `json:"rollbacks,omitempty"`
	UpdatedAt  time.Time `json:"updated_at"`

	// History keeps the most recent lifecycle events, newest last.
	History []RolloutEvent `json:"history,omitempty"`
}

// RolloutEvent is one audit-trail entry: a candidate adoption, promotion, or
// rollback, with the quality evidence that drove it.
type RolloutEvent struct {
	At         time.Time `json:"at"`
	Event      string    `json:"event"` // "candidate" | "promote" | "rollback"
	Stable     string    `json:"stable"`
	Candidate  string    `json:"candidate,omitempty"`
	StableCorr float64   `json:"stable_corr,omitempty"`
	CandCorr   float64   `json:"cand_corr,omitempty"`
}

const rolloutHistoryCap = 32

// Note appends an event to the state's bounded history and bumps UpdatedAt.
func (st *RolloutState) Note(ev RolloutEvent) {
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	st.History = append(st.History, ev)
	if n := len(st.History); n > rolloutHistoryCap {
		st.History = append(st.History[:0], st.History[n-rolloutHistoryCap:]...)
	}
	st.UpdatedAt = ev.At
}

// LoadRollout reads a platform's rollout state; a missing file returns
// (nil, nil) — no rollout has ever been recorded.
func LoadRollout(root, platform string) (*RolloutState, error) {
	raw, err := os.ReadFile(filepath.Join(root, PlatformSlug(platform), rolloutFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: read rollout state: %w", err)
	}
	var st RolloutState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("registry: bad rollout state: %w", err)
	}
	if st.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("registry: unsupported rollout state format %d", st.FormatVersion)
	}
	return &st, nil
}

// SaveRollout atomically persists a platform's rollout state.
func SaveRollout(root string, st *RolloutState) error {
	if st == nil || st.Platform == "" {
		return fmt.Errorf("registry: rollout state needs a platform")
	}
	st.FormatVersion = FormatVersion
	if st.UpdatedAt.IsZero() {
		st.UpdatedAt = time.Now().UTC()
	}
	dir := filepath.Join(root, PlatformSlug(st.Platform))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, rolloutFile), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		return enc.Encode(st)
	})
}

// RouteCandidate decides whether the request identified by key is served by
// the candidate (true) or the stable version (false) at the given split
// percentage. The decision is a pure function of (key, splitPct): the same
// key always lands on the same version, across restarts and across peers,
// with no coordination — exactly the property the shard tier's
// content-addressed keys already rely on.
func RouteCandidate(key string, splitPct float64) bool {
	if splitPct <= 0 || key == "" {
		return false
	}
	if splitPct >= 100 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	// Compare the hash's upper 32 bits against the split threshold on the
	// same 32-bit scale; upper bits decorrelate from the cache-shard use of
	// similar hashes over the low bits.
	frac := h.Sum64() >> 32
	threshold := uint64(splitPct / 100 * (1 << 32))
	return frac < threshold
}

// HysteresisConfig tunes the promote/rollback state machine. Zero values
// take the defaults noted per field.
type HysteresisConfig struct {
	// MinSamples gates any decision until both versions' quality windows
	// hold this many (prediction, measurement) pairs. Default 30.
	MinSamples int
	// PromoteMargin is the non-inferiority slack: the candidate promotes
	// when its rank correlation stays within this margin below (or anywhere
	// above) the stable's. Default 0.02.
	PromoteMargin float64
	// RollbackMargin is the clear-regression threshold: the candidate rolls
	// back when its rank correlation falls more than this below the
	// stable's. Default 0.10. Between the margins is a dead band: hold.
	RollbackMargin float64
	// PromoteAfter / RollbackAfter are the hysteresis depths: how many
	// *consecutive* evaluations must agree before acting. Default 3 each.
	PromoteAfter  int
	RollbackAfter int
}

func (c HysteresisConfig) withDefaults() HysteresisConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = 30
	}
	if c.PromoteMargin <= 0 {
		c.PromoteMargin = 0.02
	}
	if c.RollbackMargin <= 0 {
		c.RollbackMargin = 0.10
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 3
	}
	if c.RollbackAfter <= 0 {
		c.RollbackAfter = 3
	}
	return c
}

// Decision is the outcome of one hysteresis evaluation.
type Decision int

const (
	Hold Decision = iota
	Promote
	Rollback
)

func (d Decision) String() string {
	switch d {
	case Promote:
		return "promote"
	case Rollback:
		return "rollback"
	default:
		return "hold"
	}
}

// Observe feeds one quality evaluation into the hysteresis counters carried
// by st (Better/Worse) and returns the resulting decision. stableCorr and
// candCorr are Spearman rank correlations of predicted vs. measured
// runtimes; stableN and candN are the sample counts behind them.
//
// Transition rules, applied only once both windows reach MinSamples:
//
//   - candidate within PromoteMargin of (or better than) stable → Better++,
//     Worse reset; Better reaching PromoteAfter → Promote.
//   - candidate more than RollbackMargin below stable → Worse++, Better
//     reset; Worse reaching RollbackAfter → Rollback.
//   - in the dead band between the margins → both counters reset (a streak
//     must be consecutive to act).
//
// A candidate whose correlation is NaN (constant predictions — no ranking
// signal) counts as a regression when the stable has signal; a stable with
// NaN correlation cannot hold back a candidate with signal. Both NaN holds.
func Observe(st *RolloutState, stableCorr, candCorr float64, stableN, candN int, cfg HysteresisConfig) Decision {
	cfg = cfg.withDefaults()
	if st.Candidate == "" || candN < cfg.MinSamples || stableN < cfg.MinSamples {
		return Hold
	}
	sNaN, cNaN := math.IsNaN(stableCorr), math.IsNaN(candCorr)
	var better, worse bool
	switch {
	case sNaN && cNaN:
		return Hold
	case cNaN:
		worse = true
	case sNaN:
		better = true
	default:
		better = candCorr >= stableCorr-cfg.PromoteMargin
		worse = candCorr < stableCorr-cfg.RollbackMargin
	}
	switch {
	case worse:
		st.Worse++
		st.Better = 0
	case better:
		st.Better++
		st.Worse = 0
	default: // dead band
		st.Better, st.Worse = 0, 0
	}
	if st.Worse >= cfg.RollbackAfter {
		st.Better, st.Worse = 0, 0
		return Rollback
	}
	if st.Better >= cfg.PromoteAfter {
		st.Better, st.Worse = 0, 0
		return Promote
	}
	return Hold
}

// QualityWindow is a bounded ring of (predicted, measured) runtime pairs for
// one model version, scoring its live ranking quality as the Spearman rank
// correlation over the window. Safe for concurrent use.
type QualityWindow struct {
	mu    sync.Mutex
	pred  []float64
	meas  []float64
	next  int
	n     int
	total uint64
}

// NewQualityWindow returns a window holding up to capacity pairs
// (<=0 defaults to 512).
func NewQualityWindow(capacity int) *QualityWindow {
	if capacity <= 0 {
		capacity = 512
	}
	return &QualityWindow{
		pred: make([]float64, capacity),
		meas: make([]float64, capacity),
	}
}

// Add records one (predicted, measured) pair, evicting the oldest beyond
// the window's capacity.
func (w *QualityWindow) Add(pred, meas float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pred[w.next] = pred
	w.meas[w.next] = meas
	w.next = (w.next + 1) % len(w.pred)
	if w.n < len(w.pred) {
		w.n++
	}
	w.total++
}

// Snapshot returns the window's current Spearman rank correlation (NaN when
// undefined), the pairs currently held, and the total pairs ever added.
func (w *QualityWindow) Snapshot() (corr float64, n int, total uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return math.NaN(), 0, w.total
	}
	return metrics.Spearman(w.pred[:w.n], w.meas[:w.n]), w.n, w.total
}
