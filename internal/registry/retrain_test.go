package registry

import (
	"fmt"
	"strings"
	"testing"

	"paragraph/internal/feedback"
	"paragraph/internal/hw"
)

const retrainSrc = `
void k(double *a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * 2.0;
    }
}`

func feedbackRecords(n int) []feedback.Record {
	recs := make([]feedback.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, feedback.Record{
			Key:         fmt.Sprintf("%064x", i),
			Platform:    hw.V100().Name,
			Model:       "v1",
			Kernel:      "k",
			Variant:     "cpu",
			Threads:     1 + i%8,
			Bindings:    map[string]float64{"n": float64(100 + 10*i)},
			Source:      retrainSrc,
			PredictedUS: float64(100 + i),
			MeasuredUS:  float64(120 + 2*i),
			UnixNano:    int64(i),
		})
	}
	return recs
}

func TestLoadCheckpoint(t *testing.T) {
	root := t.TempDir()
	orig := saveTest(t, root, hw.V100(), "v1", 7)
	dir := ckptDir(root, hw.V100(), "v1")

	m, cp, err := LoadCheckpoint(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Manifest.Name != "v1" || cp.Manifest.Platform != hw.V100().Name {
		t.Fatalf("manifest = %+v", cp.Manifest)
	}
	if m.Checksum() != orig.Checksum() {
		t.Fatal("loaded weights differ from saved")
	}
	if _, _, err := LoadCheckpoint(dir, true); err != nil {
		t.Fatalf("f32 load: %v", err)
	}

	// Checksum drift must fail the load.
	rewriteManifest(t, dir, func(man *Manifest) { man.Checksum = strings.Repeat("0", 64) })
	if _, _, err := LoadCheckpoint(dir, false); err == nil {
		t.Fatal("checksum drift not detected")
	}
}

func TestRetrainFromFeedback(t *testing.T) {
	root := t.TempDir()
	stable := saveTest(t, root, hw.V100(), "v1", 7)
	plat := hw.V100().Name

	res, err := RetrainFromFeedback(root, plat, feedbackRecords(40), RetrainOptions{
		Epochs: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable != "v1" {
		t.Fatalf("retrain started from %q, want v1", res.Stable)
	}
	if res.TrainSamples+res.ValSamples != 40 || res.Skipped != 0 {
		t.Fatalf("samples = %d train, %d val, %d skipped", res.TrainSamples, res.ValSamples, res.Skipped)
	}
	cand := res.Candidate.Manifest
	if !strings.HasPrefix(cand.Name, "fb-") || cand.Train.Scale != "feedback" {
		t.Fatalf("candidate manifest = %+v", cand)
	}
	// The candidate reuses the stable's scalers verbatim (never refit).
	_, scp, err := LoadCheckpoint(ckptDir(root, hw.V100(), "v1"), false)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Scalers != scp.Manifest.Scalers {
		t.Fatalf("candidate scalers %+v != stable scalers %+v", cand.Scalers, scp.Manifest.Scalers)
	}

	// Fine-tuning moved the weights; the saved candidate is loadable and
	// differs from the stable.
	m, _, err := LoadCheckpoint(res.Candidate.Dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Checksum() == stable.Checksum() {
		t.Fatal("candidate weights identical to stable — no training happened")
	}

	// The rollout state now points at the candidate.
	st, err := LoadRollout(root, plat)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Stable != "v1" || st.Candidate != cand.Name || st.SplitPct != 10 {
		t.Fatalf("rollout state = %+v", st)
	}
	if len(st.History) == 0 || st.History[len(st.History)-1].Event != "candidate" {
		t.Fatalf("rollout history = %+v", st.History)
	}

	// Both versions open and serve side by side.
	reg, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup(plat, cand.Name); err != nil {
		t.Fatal(err)
	}
}

func TestRetrainGuards(t *testing.T) {
	root := t.TempDir()
	plat := hw.V100().Name

	// No checkpoints yet.
	if _, err := RetrainFromFeedback(root, plat, feedbackRecords(40), RetrainOptions{Epochs: 1}); err == nil {
		t.Fatal("retrain without checkpoints succeeded")
	}

	saveTest(t, root, hw.V100(), "v1", 7)
	// Too little feedback.
	if _, err := RetrainFromFeedback(root, plat, feedbackRecords(3), RetrainOptions{Epochs: 1}); err == nil {
		t.Fatal("retrain below MinRecords succeeded")
	}
	// Records for another platform (or unparseable sources) are skipped.
	recs := feedbackRecords(40)
	for i := range recs[:10] {
		recs[i].Platform = hw.Power9().Name
	}
	recs[10].Source = "not C at all %%%"
	res, err := RetrainFromFeedback(root, plat, recs, RetrainOptions{Epochs: 1, MinRecords: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 11 || res.TrainSamples+res.ValSamples != 29 {
		t.Fatalf("skip accounting: %+v", res)
	}
}
