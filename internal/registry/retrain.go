package registry

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"paragraph/internal/dataset"
	"paragraph/internal/feedback"
	"paragraph/internal/gnn"
	"paragraph/internal/hw"
	"paragraph/internal/paragraph"
)

// The retrain path turns the feedback log back into model weights: measured
// (source, grid point, runtime) records become ParaGraph samples scaled with
// the *stable checkpoint's* manifest scalers (never refit — the serving
// stack around the weights must keep meaning the same thing), the stable
// model is fine-tuned incrementally from its current weights, and the result
// is saved as a new candidate version with the platform's rollout state
// pointed at it.

// LoadCheckpoint reads one checkpoint directory into a resident model,
// verifying config, weights, and checksum — the standalone counterpart of a
// Registry entry load, for callers (retrain, candidate adoption) that want
// the model itself rather than a lazily-loaded serving entry. When f32 is
// true the model also precomputes the float32 inference weights used by the
// serving default.
func LoadCheckpoint(dir string, f32 bool) (*gnn.Model, Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, Checkpoint{}, fmt.Errorf("registry: %w", err)
	}
	var man Manifest
	if err := jsonUnmarshalStrictVersion(raw, &man); err != nil {
		return nil, Checkpoint{}, fmt.Errorf("registry: %s: %w", dir, err)
	}
	cp := Checkpoint{Dir: dir, Manifest: man}
	f, err := os.Open(filepath.Join(dir, weightsFile))
	if err != nil {
		return nil, Checkpoint{}, fmt.Errorf("registry: %s: %w", dir, err)
	}
	defer f.Close()
	m := gnn.NewModel(man.Config)
	if err := m.Load(f); err != nil {
		return nil, Checkpoint{}, fmt.Errorf("registry: %s: config/weights mismatch: %w", dir, err)
	}
	if man.Checksum != "" && m.Checksum() != man.Checksum {
		return nil, Checkpoint{}, fmt.Errorf("registry: %s: weights checksum mismatch", dir)
	}
	if f32 {
		m.SetFloat32Inference(true)
		m.PrecomputeInference()
	}
	return m, cp, nil
}

func jsonUnmarshalStrictVersion(raw []byte, man *Manifest) error {
	if err := json.Unmarshal(raw, man); err != nil {
		return fmt.Errorf("bad manifest: %w", err)
	}
	if man.FormatVersion != FormatVersion {
		return fmt.Errorf("unsupported manifest format %d", man.FormatVersion)
	}
	return nil
}

// RetrainOptions tunes RetrainFromFeedback. Zero values take the noted
// defaults.
type RetrainOptions struct {
	// CandidateName names the new checkpoint; "" derives a unique
	// "fb-<UTC timestamp>" name.
	CandidateName string
	// SplitPct is the canary traffic percentage recorded in the rollout
	// state for the new candidate. Default 10.
	SplitPct float64
	// Epochs / BatchSize / LR / Workers feed gnn.FitIncremental (its
	// incremental defaults apply when zero).
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int
	Seed      int64
	// ValFraction of the feedback samples is held out for validation.
	// Default 0.1.
	ValFraction float64
	// MinRecords gates retraining until enough usable feedback exists.
	// Default 20.
	MinRecords int
	// DefaultTrip is the loop-trip fallback used when rebuilding graphs
	// from feedback sources (dataset.Config's default applies when zero).
	DefaultTrip float64
}

// RetrainResult reports what a retrain produced.
type RetrainResult struct {
	Candidate    Checkpoint
	Stable       string // the version the retrain started from
	TrainSamples int
	ValSamples   int
	Skipped      int // feedback records that could not be rebuilt into samples
	FinalValRMSE float64
}

// RetrainFromFeedback fine-tunes platform's stable checkpoint on measured
// feedback records and saves the result as a candidate version under root,
// updating the platform's rollout state to point at it. The stable version
// is the rollout state's stable when set (and still on disk), else the
// platform's default alias.
func RetrainFromFeedback(root, platform string, recs []feedback.Record, opts RetrainOptions) (RetrainResult, error) {
	var res RetrainResult
	if opts.SplitPct <= 0 {
		opts.SplitPct = 10
	}
	if opts.SplitPct > 100 {
		opts.SplitPct = 100
	}
	if opts.ValFraction <= 0 {
		opts.ValFraction = 0.1
	}
	if opts.MinRecords <= 0 {
		opts.MinRecords = 20
	}

	machine, err := hw.ByName(platform)
	if err != nil {
		return res, fmt.Errorf("registry: retrain: %w", err)
	}

	// Resolve the stable checkpoint to fine-tune from.
	cps, err := Discover(root)
	if err != nil {
		return res, err
	}
	byName := map[string]Checkpoint{}
	for _, cp := range cps {
		if cp.Manifest.Platform == platform {
			byName[cp.Manifest.Name] = cp
		}
	}
	if len(byName) == 0 {
		return res, fmt.Errorf("registry: retrain: no checkpoints for platform %q under %s", platform, root)
	}
	st, err := LoadRollout(root, platform)
	if err != nil {
		return res, err
	}
	var stable Checkpoint
	if st != nil && st.Stable != "" {
		if cp, ok := byName[st.Stable]; ok {
			stable = cp
		}
	}
	if stable.Dir == "" {
		// Default alias: a version literally named "default" wins, else the
		// newest CreatedAt (name as tiebreak), matching pickDefault.
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		stable = byName[names[0]]
		for _, n := range names[1:] {
			cp := byName[n]
			if stable.Manifest.Name == "default" {
				break
			}
			if cp.Manifest.Name == "default" || cp.Manifest.CreatedAt.After(stable.Manifest.CreatedAt) {
				stable = cp
			}
		}
	}
	res.Stable = stable.Manifest.Name

	model, cp, err := LoadCheckpoint(stable.Dir, false)
	if err != nil {
		return res, err
	}
	man := cp.Manifest
	level, err := ParseLevel(man.Level)
	if err != nil {
		return res, fmt.Errorf("registry: retrain: %w", err)
	}

	// Rebuild samples from the feedback records with the manifest's scalers.
	samples, skipped := FeedbackSamples(recs, platform, man, level, opts.DefaultTrip)
	res.Skipped = skipped
	if len(samples) < opts.MinRecords {
		return res, fmt.Errorf("registry: retrain: only %d usable feedback records for %s (need %d)",
			len(samples), platform, opts.MinRecords)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	nVal := int(float64(len(samples)) * opts.ValFraction)
	if nVal >= len(samples) {
		nVal = len(samples) - 1
	}
	val, train := samples[:nVal], samples[nVal:]
	res.TrainSamples, res.ValSamples = len(train), len(val)

	hist, err := model.FitIncremental(train, val, gnn.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		LR:        opts.LR,
		Workers:   opts.Workers,
		Seed:      opts.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("registry: retrain: %w", err)
	}
	if rmse := hist.FinalValRMSE(); !math.IsInf(rmse, 1) {
		res.FinalValRMSE = rmse
	}

	name := opts.CandidateName
	if name == "" {
		name = fmt.Sprintf("fb-%s", time.Now().UTC().Format("20060102-150405"))
		for i := 2; ; i++ {
			if _, taken := byName[name]; !taken {
				break
			}
			name = fmt.Sprintf("fb-%s.%d", time.Now().UTC().Format("20060102-150405"), i)
		}
	}
	if err := validName(name); err != nil {
		return res, err
	}
	if name == res.Stable {
		return res, fmt.Errorf("registry: retrain: candidate name %q equals the stable version", name)
	}

	prep := &dataset.Prepared{
		TargetScaler: man.Scalers.Target,
		TeamScaler:   man.Scalers.Team,
		ThreadScaler: man.Scalers.Thread,
		WScale:       man.Scalers.WScale,
	}
	dir, err := Save(root, machine, name, level, model, prep, TrainInfo{
		Scale:        "feedback",
		Epochs:       len(hist.TrainLoss),
		TrainSamples: len(train),
		ValSamples:   len(val),
		FinalValRMSE: res.FinalValRMSE,
	})
	if err != nil {
		return res, err
	}
	cman := man
	cman.Name = name
	res.Candidate = Checkpoint{Dir: dir}
	if _, cp, err := LoadCheckpoint(dir, false); err == nil {
		res.Candidate = cp
	} else {
		res.Candidate.Manifest = cman
	}

	// Point the rollout state at the new candidate.
	if st == nil {
		st = &RolloutState{Platform: platform}
	}
	st.Stable = res.Stable
	st.Candidate = name
	st.SplitPct = opts.SplitPct
	st.Better, st.Worse = 0, 0
	st.Note(RolloutEvent{Event: "candidate", Stable: st.Stable, Candidate: name})
	if err := SaveRollout(root, st); err != nil {
		return res, err
	}
	return res, nil
}

// FeedbackSamples rebuilds gnn training samples from feedback records using
// a checkpoint manifest's scalers (targets are log-runtimes scaled by the
// manifest's target scaler; grid features by its team/thread scalers).
// Records whose source no longer parses, or that belong to a different
// platform, are counted in skipped rather than failing the batch.
func FeedbackSamples(recs []feedback.Record, platform string, man Manifest, level paragraph.Level, defaultTrip float64) ([]*gnn.Sample, int) {
	var out []*gnn.Sample
	skipped := 0
	for _, rec := range recs {
		if rec.Platform != platform || rec.Validate() != nil {
			skipped++
			continue
		}
		// Threads-per-team, exactly as dataset.Prepare feeds buildSample, so
		// retrain samples match the original training distribution.
		g, err := paragraph.BuildKernel(rec.Source, paragraph.Options{
			Level:       level,
			Threads:     rec.Threads,
			Bindings:    rec.Bindings,
			DefaultTrip: defaultTrip,
		})
		if err != nil {
			skipped++
			continue
		}
		eg, err := gnn.Encode(g, int(paragraph.NumEdgeTypes))
		if err != nil {
			skipped++
			continue
		}
		eg.WScale = man.Scalers.WScale
		s := &gnn.Sample{
			G:      eg,
			RawUS:  rec.MeasuredUS,
			Target: man.Scalers.Target.Scale(math.Log(math.Max(rec.MeasuredUS, 1e-3))),
			App:    rec.Kernel,
			Name:   rec.Kernel + "/" + rec.Variant,
		}
		s.Feats[0] = man.Scalers.Team.Scale(float64(rec.Teams))
		s.Feats[1] = man.Scalers.Thread.Scale(float64(rec.Threads))
		out = append(out, s)
	}
	return out, skipped
}
