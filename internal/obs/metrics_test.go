package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// expositionLine matches one sample line of the text format: a metric name
// with optional label set and a float value. Comment lines are matched
// separately.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func checkExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

func TestCounterExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("serve_requests_total", "Requests by endpoint.", L("endpoint", "advise"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter value = %d, want 3", c.Value())
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	checkExposition(t, out)
	for _, want := range []string{
		"# HELP serve_requests_total Requests by endpoint.",
		"# TYPE serve_requests_total counter",
		`serve_requests_total{endpoint="advise"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFamiliesAndSeriesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zzz_total", "", nil)
	reg.Counter("aaa_total", "", L("k", "b"))
	reg.Counter("aaa_total", "", L("k", "a"))
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	ia, iz := strings.Index(out, "aaa_total"), strings.Index(out, "zzz_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `k="a"`) > strings.Index(out, `k="b"`) {
		t.Fatalf("series not sorted by labels:\n%s", out)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	reg.Counter("x_total", "", L("a", "1"))
}

func TestTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	reg.GaugeFunc("x_total", "", L("a", "1"), func() float64 { return 0 })
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", L("peer", `he said "hi"\`+"\n"))
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	want := `esc_total{peer="he said \"hi\"\\\n"} 0`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, b.String())
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 7.5
	reg.GaugeFunc("pool_in_flight", "Evaluations in flight.", nil, func() float64 { return v })
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "pool_in_flight 7.5") {
		t.Fatalf("gauge missing:\n%s", b.String())
	}
	checkExposition(t, b.String())
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", L("model", "default"), []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	checkExposition(t, out)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{model="default",le="0.1"} 1`,
		`lat_seconds_bucket{model="default",le="1"} 3`,
		`lat_seconds_bucket{model="default",le="10"} 4`,
		`lat_seconds_bucket{model="default",le="+Inf"} 5`,
		`lat_seconds_sum{model="default"} 56.05`,
		`lat_seconds_count{model="default"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("Sum = %g, want 56.05", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// 10 observations uniform in (1,2]: interpolation stays inside the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1,2]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 2 {
		t.Errorf("p99 = %g, want in [p50,2]", p99)
	}
	// An observation beyond the last bound saturates at that bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 4 {
		t.Errorf("overflow quantile = %g, want 4 (last finite bound)", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	if math.Abs(h.Sum()-goroutines*per*0.001) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), goroutines*per*0.001)
	}
}

func TestCollectFunc(t *testing.T) {
	reg := NewRegistry()
	reg.CollectFunc("fw_total", "Forwards by peer.", "counter", func(emit func(Labels, float64)) {
		emit(L("peer", "b"), 2)
		emit(L("peer", "a"), 1)
	})
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	checkExposition(t, out)
	ia, ib := strings.Index(out, `peer="a"`), strings.Index(out, `peer="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("collect series missing or unsorted:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("one_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}
