// Package obs is the serving tier's observability layer: request-scoped
// traces with named spans (trace.go), and a small metrics registry —
// counters, gauges, log-scaled histograms — exposed in the Prometheus text
// exposition format (this file). It is deliberately dependency-free: the
// instruments are plain atomics so they can sit on hot paths, and the
// exposition writer speaks just enough of the text format (version 0.0.4)
// for any Prometheus-compatible scraper.
//
// Two registration styles coexist. Instruments created through the
// registry (Counter, Histogram) are the source of truth for what they
// count and are read lock-free at scrape time. Scrape-time functions
// (CounterFunc, GaugeFunc, CollectFunc) adapt counters that already live
// elsewhere — cache stats, pool occupancy, cluster forward tables — so the
// serving layer's existing atomics stay the single source of truth and
// /metrics cannot drift from /v1/stats.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair of a metric series.
type Label struct{ Name, Value string }

// Labels is an ordered label set. Series identity is the rendered form, so
// two registrations with the same pairs in a different order are distinct;
// callers should keep a family's label order consistent.
type Labels []Label

// L builds a label set from alternating name, value strings.
func L(nv ...string) Labels {
	if len(nv)%2 != 0 {
		panic("obs: L needs name/value pairs")
	}
	ls := make(Labels, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		ls = append(ls, Label{Name: nv[i], Value: nv[i+1]})
	}
	return ls
}

// String renders the set as `a="b",c="d"` with label-value escaping.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing integer, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefLatencyBuckets are the registry's fixed log-scaled latency buckets in
// seconds: 1–2.5–5 steps per decade from 25µs to 10s. Wide enough for a
// cache hit (~µs) and a cold advise grid (~seconds) on one axis, few
// enough that a histogram stays a cache line of counters.
var DefLatencyBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// BatchSizeBuckets bucket a micro-batch's sample count (power-of-two
// steps up to well past any sane -batch setting).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram counts observations into fixed upper-bound buckets (le
// semantics, as Prometheus histograms) plus a running sum and count.
// Observe is lock-free; snapshots are read bucket-by-bucket and are
// consistent enough for monitoring. Quantile estimates by linear
// interpolation inside the target bucket, the same model
// histogram_quantile() applies server-side.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// The +Inf bucket is implicit. The histogram is standalone — register it
// with Registry.RegisterHistogram to expose it, or keep it private and
// read Count/Sum/Quantile directly.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the target bucket. Observations beyond the
// last finite bound are reported as that bound (the estimate saturates,
// as histogram_quantile does). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// family is one exposition family: a name, HELP/TYPE header, and its
// series. Series render themselves; the family sorts them for a
// deterministic scrape.
type family struct {
	name, help, typ string
	series          []metricSeries
	seen            map[string]bool // rendered label sets, for dedup
	collect         func(emit func(Labels, float64))
}

type metricSeries struct {
	labels string
	write  func(w io.Writer, name, labels string)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All registration methods are safe for concurrent use
// but meant for startup; they panic on conflicting re-registration (same
// name with a different type or a duplicate label set), which is a
// programming error.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, seen: map[string]bool{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) add(labels Labels, write func(w io.Writer, name, labels string)) {
	rendered := labels.String()
	if f.collect != nil {
		panic(fmt.Sprintf("obs: %s already has a collect function", f.name))
	}
	if f.seen[rendered] {
		panic(fmt.Sprintf("obs: duplicate series %s{%s}", f.name, rendered))
	}
	f.seen[rendered] = true
	f.series = append(f.series, metricSeries{labels: rendered, write: write})
}

// Counter creates, registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, labels, func() float64 { return float64(c.Value()) })
	return c
}

// CounterFunc registers a counter series whose value is read at scrape
// time. The function must report a monotonically non-decreasing value.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "counter", labels, fn)
}

// GaugeFunc registers a gauge series whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "gauge", labels, fn)
}

func (r *Registry) registerFunc(name, help, typ string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, typ).add(labels, func(w io.Writer, famName, rendered string) {
		writeSample(w, famName, "", rendered, "", fn())
	})
}

// Histogram creates, registers and returns a histogram series.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram registers an existing histogram as one series of the
// named family — the hook for instruments owned by another component
// (e.g. a batcher's latency histogram) that must also serve /v1/stats.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "histogram").add(labels, func(w io.Writer, famName, rendered string) {
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(w, famName, "_bucket", rendered,
				`le="`+formatFloat(bound)+`"`, float64(cum))
		}
		writeSample(w, famName, "_bucket", rendered, `le="+Inf"`, float64(h.Count()))
		writeSample(w, famName, "_sum", rendered, "", h.Sum())
		writeSample(w, famName, "_count", rendered, "", float64(h.Count()))
	})
}

// CollectFunc registers a family whose series are discovered at scrape
// time — for label sets that only exist once traffic shapes them, like
// per-peer cluster forward counters. typ must be "counter" or "gauge".
// The family admits no other registrations.
func (r *Registry) CollectFunc(name, help, typ string, collect func(emit func(Labels, float64))) {
	if typ != "counter" && typ != "gauge" {
		panic("obs: CollectFunc type must be counter or gauge")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	if f.collect != nil || len(f.series) > 0 {
		panic(fmt.Sprintf("obs: %s already registered", name))
	}
	f.collect = collect
}

func writeSample(w io.Writer, name, suffix, labels, extra string, v float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	case labels == "":
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, extra, formatFloat(v))
	case extra == "":
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	default:
		fmt.Fprintf(w, "%s%s{%s,%s} %s\n", name, suffix, labels, extra, formatFloat(v))
	}
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format, families
// and series in deterministic (sorted) order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			type dyn struct {
				labels string
				v      float64
			}
			var rows []dyn
			f.collect(func(ls Labels, v float64) {
				rows = append(rows, dyn{labels: ls.String(), v: v})
			})
			sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
			for _, row := range rows {
				writeSample(w, f.name, "", row.labels, "", row.v)
			}
			continue
		}
		series := append([]metricSeries(nil), f.series...)
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, s := range series {
			s.write(w, f.name, s.labels)
		}
	}
}

// Handler returns an http.Handler serving the registry in text exposition
// format (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
