package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace id lengths = %d, %d, want 32", len(a), len(b))
	}
	if a == b {
		t.Fatal("two trace ids collided")
	}
	if SanitizeTraceID(a) != a {
		t.Fatalf("generated id %q failed its own sanitizer", a)
	}
}

func TestSanitizeTraceID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-DEF_123", "abc-DEF_123"},
		{"", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
		{"has space", ""},
		{"quote\"", ""},
		{"newline\n", ""},
		{"unicode-é", ""},
	}
	for _, c := range cases {
		if got := SanitizeTraceID(c.in); got != c.want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an id")
	}
	sp := tr.StartSpan("x") // nil span
	sp.Annotate("detail")
	sp.End()
	tr.AddSpan("y", "", time.Now(), time.Millisecond)
	NewTracer(TracerOptions{}).Finish(tr, 200) // must not panic
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty ctx) = %v, want nil", got)
	}
	if ctx := WithTrace(context.Background(), nil); TraceFrom(ctx) != nil {
		t.Fatal("WithTrace(nil) stored a trace")
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tracer := NewTracer(TracerOptions{Logger: slog.New(slog.NewTextHandler(new(bytes.Buffer), nil))})
	tr := tracer.Start("", "advise")
	if tr.ID() == "" {
		t.Fatal("Start minted no id")
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("context round-trip lost the trace")
	}

	sp := tr.StartSpan("decode")
	sp.End()
	fw := tr.StartSpan("forward")
	fw.Annotate("peer-1")
	fw.End()
	tr.AddSpan("singleflight_wait", "", time.Now().Add(-time.Millisecond), time.Millisecond)

	tracer.Finish(tr, 200)
	ft, ok := tracer.Find(tr.ID())
	if !ok {
		t.Fatal("finished trace not retained")
	}
	if ft.Endpoint != "advise" || ft.Status != 200 {
		t.Fatalf("trace meta = %q/%d, want advise/200", ft.Endpoint, ft.Status)
	}
	names := map[string]SpanRecord{}
	for _, s := range ft.Spans {
		names[s.Name] = s
	}
	for _, want := range []string{"decode", "forward", "singleflight_wait"} {
		if _, ok := names[want]; !ok {
			t.Errorf("span %q missing from %v", want, ft.Spans)
		}
	}
	if names["forward"].Detail != "peer-1" {
		t.Errorf("forward detail = %q, want peer-1", names["forward"].Detail)
	}
	if names["singleflight_wait"].DurUS < 900 {
		t.Errorf("retroactive span duration = %dus, want ~1000", names["singleflight_wait"].DurUS)
	}
}

func TestSpanLimit(t *testing.T) {
	tracer := NewTracer(TracerOptions{MaxSpans: 2})
	tr := tracer.Start("", "x")
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").End()
	}
	tracer.Finish(tr, 200)
	ft, _ := tracer.Find(tr.ID())
	if len(ft.Spans) != 2 || ft.SpansDropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want 2/3", len(ft.Spans), ft.SpansDropped)
	}
}

func TestRingBoundAndOrder(t *testing.T) {
	tracer := NewTracer(TracerOptions{RingSize: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		tr := tracer.Start("", "x")
		ids = append(ids, tr.ID())
		tracer.Finish(tr, 200)
	}
	recent := tracer.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring retained %d traces, want 3", len(recent))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	if got := tracer.Recent(1); len(got) != 1 || got[0].ID != ids[4] {
		t.Fatalf("Recent(1) = %v, want just newest", got)
	}
	if _, ok := tracer.Find(ids[0]); ok {
		t.Fatal("evicted trace still findable")
	}
	if tracer.Started() != 5 {
		t.Fatalf("Started = %d, want 5", tracer.Started())
	}
}

func TestSlowLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tracer := NewTracer(TracerOptions{Slow: time.Nanosecond, Logger: logger})
	tr := tracer.Start("slow-id-1", "advise")
	time.Sleep(time.Millisecond)
	tracer.Finish(tr, 200)
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "trace_id=slow-id-1") {
		t.Fatalf("slow log missing fields:\n%s", out)
	}
	if tracer.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d, want 1", tracer.SlowCount())
	}
	ft, _ := tracer.Find("slow-id-1")
	if !ft.Slow {
		t.Fatal("retained trace not marked slow")
	}

	// Below threshold: no log.
	buf.Reset()
	fast := NewTracer(TracerOptions{Slow: time.Hour, Logger: logger})
	fast.Finish(fast.Start("", "advise"), 200)
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %s", buf.String())
	}
}

func TestConcurrentTraceUse(t *testing.T) {
	tracer := NewTracer(TracerOptions{RingSize: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := tracer.Start("", "x")
				tr.StartSpan("a").End()
				tracer.Finish(tr, 200)
				tracer.Recent(4)
			}
		}()
	}
	wg.Wait()
	if tracer.Started() != 400 {
		t.Fatalf("Started = %d, want 400", tracer.Started())
	}
}
