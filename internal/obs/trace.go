package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace id across the wire: accepted at
// ingress, echoed on responses, and set on every shard forward and
// replica write-through so one id follows the request through the tier.
const TraceHeader = "X-Paragraph-Trace-Id"

// NewTraceID returns a fresh 128-bit random trace id in hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a fixed id rather than take the request down with it.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID validates a caller-supplied trace id: 1–64 characters
// from [0-9A-Za-z_-]. Anything else returns "" (the caller then mints a
// fresh id), so hostile header values never reach logs or peers verbatim.
func SanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// SpanRecord is one finished span of a trace, offsets relative to the
// trace start so a trace reads as a timeline.
type SpanRecord struct {
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Trace accumulates the spans of one request. A nil *Trace is valid and
// inert — every method no-ops — so instrumented code paths never need a
// nil check. Methods are safe for concurrent use (batched requests end
// spans from the collector goroutine).
type Trace struct {
	id       string
	endpoint string
	start    time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	limit   int
}

// ID returns the trace id ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// AddSpan records a completed span retroactively from its own wall-clock
// start — the shape needed when the duration is only known after the fact
// (singleflight waiters learn they waited once the leader lands).
func (t *Trace) AddSpan(name, detail string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, SpanRecord{
			Name:    name,
			Detail:  detail,
			StartUS: off.Microseconds(),
			DurUS:   d.Microseconds(),
		})
	}
	t.mu.Unlock()
}

// Span is an in-progress span; End records it on its trace.
type Span struct {
	t      *Trace
	name   string
	detail string
	start  time.Time
}

// StartSpan opens a named span. Usable on a nil trace (returns a nil span,
// whose methods no-op).
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// Annotate attaches a detail string (e.g. the peer that answered a
// forward) shown alongside the span name.
func (s *Span) Annotate(detail string) {
	if s == nil {
		return
	}
	s.detail = detail
}

// End records the span on its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.AddSpan(s.name, s.detail, s.start, time.Since(s.start))
}

// FinishedTrace is a completed trace as served by GET /v1/trace.
type FinishedTrace struct {
	ID           string       `json:"trace_id"`
	Endpoint     string       `json:"endpoint"`
	Status       int          `json:"status"`
	Start        time.Time    `json:"start"`
	DurationMS   float64      `json:"duration_ms"`
	Slow         bool         `json:"slow,omitempty"`
	SpansDropped int          `json:"spans_dropped,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// TracerOptions configure a Tracer.
type TracerOptions struct {
	// Slow is the duration at or above which a finished trace is logged
	// as a structured slow-request record. <= 0 disables slow logging.
	Slow time.Duration
	// RingSize bounds the in-memory ring of recent traces (default 128).
	RingSize int
	// MaxSpans bounds the spans kept per trace (default 128); excess
	// spans are counted in SpansDropped.
	MaxSpans int
	// Logger receives slow-trace records (default slog.Default()).
	Logger *slog.Logger
}

// Tracer starts traces at ingress and retains finished ones in a bounded
// ring for GET /v1/trace. All methods are safe for concurrent use.
type Tracer struct {
	slow     time.Duration
	maxSpans int
	logger   *slog.Logger

	started atomic.Uint64
	slowN   atomic.Uint64

	mu   sync.Mutex
	ring []FinishedTrace // fixed capacity, next is the write cursor
	next int
	full bool
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 128
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 128
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	return &Tracer{
		slow:     opts.Slow,
		maxSpans: opts.MaxSpans,
		logger:   opts.Logger,
		ring:     make([]FinishedTrace, opts.RingSize),
	}
}

// Start opens a trace for endpoint. id is the (already sanitized) inbound
// trace id; empty mints a fresh one.
func (tr *Tracer) Start(id, endpoint string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	tr.started.Add(1)
	return &Trace{id: id, endpoint: endpoint, start: time.Now(), limit: tr.maxSpans}
}

// Finish seals t with the response status, stores it in the ring, and
// emits a slow-request log record when the trace crossed the threshold.
// No-op on a nil trace.
func (tr *Tracer) Finish(t *Trace, status int) {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.mu.Lock()
	spans := append([]SpanRecord(nil), t.spans...)
	dropped := t.dropped
	t.mu.Unlock()
	ft := FinishedTrace{
		ID:           t.id,
		Endpoint:     t.endpoint,
		Status:       status,
		Start:        t.start,
		DurationMS:   float64(d.Microseconds()) / 1000,
		Slow:         tr.slow > 0 && d >= tr.slow,
		SpansDropped: dropped,
		Spans:        spans,
	}
	tr.mu.Lock()
	tr.ring[tr.next] = ft
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()
	if ft.Slow {
		tr.slowN.Add(1)
		tr.logger.Warn("slow request",
			"trace_id", ft.ID,
			"endpoint", ft.Endpoint,
			"status", ft.Status,
			"duration_ms", ft.DurationMS,
			"spans", len(ft.Spans),
		)
	}
}

// Recent returns up to limit finished traces, newest first (limit <= 0
// means all retained).
func (tr *Tracer) Recent(limit int) []FinishedTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.next
	if tr.full {
		n = len(tr.ring)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]FinishedTrace, 0, limit)
	for i := 0; i < limit; i++ {
		idx := tr.next - 1 - i
		if idx < 0 {
			idx += len(tr.ring)
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// Find returns the most recent retained trace with the given id.
func (tr *Tracer) Find(id string) (FinishedTrace, bool) {
	for _, ft := range tr.Recent(0) {
		if ft.ID == id {
			return ft, true
		}
	}
	return FinishedTrace{}, false
}

// Started returns the number of traces started.
func (tr *Tracer) Started() uint64 { return tr.started.Load() }

// SlowCount returns the number of traces logged as slow.
func (tr *Tracer) SlowCount() uint64 { return tr.slowN.Load() }

type traceCtxKey struct{}

// WithTrace attaches t to ctx; retrieve with TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil — safe to call on
// any context, and the nil result is itself safe to use.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
